"""Iterative modulo scheduling (software pipelining).

Implements the Rau-style software pipeliner that gives the paper's second
experimental regime ("SWP enabled") its character:

* **ResMII** — the resource-constrained lower bound on the initiation
  interval.  It is *fractional*: a loop using 5 memory slots on a 2-port
  machine has ResMII 2.5, but the II must be an integer, so the rolled loop
  pays 3 cycles per iteration.  Unrolling by 2 yields II 5 for two
  iterations — 2.5 per iteration.  This "fractional II" recovery is exactly
  why ORC still unrolls under SWP, and it emerges here from the arithmetic
  rather than being hard-coded.
* **RecMII** — the recurrence-constrained bound: the maximum over dependence
  cycles of (total latency / total distance), computed per strongly
  connected component by parametric binary search (Lawler).
* **IMS** — iterative modulo scheduling with ejection and a scheduling
  budget, falling back to a higher II when placement fails.

Two implementations coexist.  The public entry points run on
:class:`~repro.sched.precompute.SchedPrecomp` integer tables (built on the
fly when the caller does not supply one) and avoid all per-query enum
hashing and IR attribute chains in the hot placement loop.  The original
table-free code is retained verbatim as ``*_reference`` functions: the
equivalence tests assert the two produce bit-identical schedules, and
``repro-unroll bench`` uses the reference path as its honest baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.ir.dependence import DependenceGraph, edge_latency
from repro.ir.types import DType, FUKind
from repro.machine.model import MachineModel
from repro.sched.precompute import FU_INDEX, N_FU_KINDS, SchedPrecomp

_MEM = FU_INDEX[FUKind.MEM]
_INT = FU_INDEX[FUKind.INT]
_FP = FU_INDEX[FUKind.FP]
_BR = FU_INDEX[FUKind.BR]


@dataclass(frozen=True)
class ModuloSchedule:
    """A kernel schedule: initiation interval, stage count, issue times."""

    ii: int
    stages: int
    start: tuple[int, ...]
    res_mii: float
    rec_mii: int

    @property
    def mii(self) -> int:
        return max(-(-int(self.res_mii * 1000) // 1000), self.rec_mii, 1)


class ModuloScheduleError(RuntimeError):
    """Raised when no feasible II is found within the search budget."""


# ----------------------------------------------------------------------
# Lower bounds (fast path on precomputed tables).
# ----------------------------------------------------------------------


def resource_mii(
    deps: DependenceGraph, machine: MachineModel, pre: SchedPrecomp | None = None
) -> float:
    """Fractional resource-constrained minimum initiation interval."""
    if pre is None:
        pre = SchedPrecomp.build(deps, machine)
    usage = [0.0] * N_FU_KINDS
    atype = 0.0  # flexible ops that may issue on INT or MEM units
    total_slots = 0.0
    for i in range(pre.n):
        occ = float(pre.occ[i])
        total_slots += 1.0
        options = pre.fu_opts[i]
        if len(options) > 1:
            atype += occ
        else:
            usage[options[0]] += occ

    counts = pre.fu_capacity
    n_branches = pre.n_branches
    bounds = [
        usage[_MEM] / counts[_MEM],
        usage[_FP] / counts[_FP],
        usage[_BR] / counts[_BR],
        # A-type ops share the INT and MEM files with the dedicated users.
        (usage[_INT] + usage[_MEM] + atype) / (counts[_INT] + counts[_MEM]),
        # Each branch closes its issue group, so it effectively costs a
        # whole cycle on top of the non-branch issue bandwidth.
        n_branches + (total_slots - n_branches) / pre.issue_width,
    ]
    return max(bounds)


def recurrence_mii(
    deps: DependenceGraph, machine: MachineModel, pre: SchedPrecomp | None = None
) -> int:
    """Recurrence-constrained minimum II: the ceiling of the maximum cycle
    ratio (sum of latencies / sum of distances) over dependence cycles."""
    if pre is None:
        pre = SchedPrecomp.build(deps, machine)
    n = pre.n
    if n == 0:
        return 1
    succs = pre.succs
    best = 1
    for component in _sccs(n, succs):
        if len(component) == 1:
            node = next(iter(component))
            # Self-loop?
            ratios = [
                -(-lat // dist)
                for t, lat, dist in succs[node]
                if t == node and dist >= 1
            ]
            if ratios:
                best = max(best, max(ratios))
            continue
        best = max(best, _max_cycle_ratio_tables(succs, component))
    return best


def _sccs(n: int, succs) -> list[set[int]]:
    """Iterative Tarjan SCC over the precomputed adjacency tables."""
    index = [0] * n
    lowlink = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: list[int] = []
    components: list[set[int]] = []
    counter = [1]

    for root in range(n):
        if visited[root]:
            continue
        work = [(root, iter([t for t, _, _ in succs[root]]))]
        visited[root] = True
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if not visited[succ]:
                    visited[succ] = True
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter([t for t, _, _ in succs[succ]])))
                    advanced = True
                    break
                if on_stack[succ] and index[succ] < lowlink[node]:
                    lowlink[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                component: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _max_cycle_ratio_tables(succs, component: set[int]) -> int:
    """Smallest integer II admitting no positive cycle with edge weights
    ``latency - II * distance`` inside ``component`` (Lawler's method)."""
    edges = []
    total_lat = 0
    for node in component:
        for succ, lat, dist in succs[node]:
            if succ in component:
                edges.append((node, succ, lat, dist))
                total_lat += lat
    lo, hi = 1, max(total_lat, 1)
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_positive_cycle(component, edges, mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _has_positive_cycle(component: set[int], edges: list, ii: int) -> bool:
    """Bellman-Ford positive-cycle detection with weights lat - ii*dist."""
    dist = dict.fromkeys(component, 0)
    nodes = len(component)
    for round_no in range(nodes):
        changed = False
        for src, dst, lat, distance in edges:
            weight = lat - ii * distance
            if dist[src] + weight > dist[dst]:
                dist[dst] = dist[src] + weight
                changed = True
        if not changed:
            return False
    return True


# ----------------------------------------------------------------------
# Iterative modulo scheduling (fast path on precomputed tables).
# ----------------------------------------------------------------------


def modulo_schedule(
    deps: DependenceGraph,
    machine: MachineModel,
    ii_budget: int = 48,
    pre: SchedPrecomp | None = None,
) -> ModuloSchedule:
    """Find a kernel schedule, searching IIs upward from MII."""
    if pre is None:
        pre = SchedPrecomp.build(deps, machine)
    res = resource_mii(deps, machine, pre)
    rec = recurrence_mii(deps, machine, pre)
    mii = max(-(-int(res * 1_000_000) // 1_000_000), rec, 1)
    n = pre.n
    for ii in range(mii, mii + ii_budget):
        start = _try_ii_tables(pre, ii, budget=max(64, n * 10))
        if start is not None:
            horizon = max(start) if start else 0
            stages = horizon // ii + 1
            return ModuloSchedule(ii, stages, tuple(start), res, rec)
    raise ModuloScheduleError(
        f"no feasible II within [{mii}, {mii + ii_budget}) for a {n}-op body"
    )


def _try_ii_tables(pre: SchedPrecomp, ii: int, budget: int):
    """One IMS attempt at a fixed II on integer tables.

    Decision-for-decision identical to the reference :func:`_try_ii`:
    same scheduling order, same time-slot search, same unit-option order,
    same ejection scans.  Only the data representation differs (flat lists
    and FU indices instead of enum-keyed dicts and IR lookups).
    """
    n = pre.n
    occ_t = pre.occ
    fu_opts = pre.fu_opts
    capacity = pre.fu_capacity
    succs = pre.succs
    preds = pre.preds

    start: list[int | None] = [None] * n
    last_tried = [-1] * n
    # Modulo reservation table: per unit kind index, per row, occupied count.
    mrt = [[0] * ii for _ in range(N_FU_KINDS)]
    placed_kind = [-1] * n  # -1 = not placed

    worklist = deque(pre.order)
    pop = worklist.popleft
    push = worklist.append
    while worklist:
        if budget <= 0:
            return None
        budget -= 1
        i = pop()
        lo = 0
        for j, lat, dist in preds[i]:
            sj = start[j]
            if sj is None:
                continue
            candidate = sj + lat - ii * dist
            if candidate > lo:
                lo = candidate
        t0 = max(lo, last_tried[i] + 1)
        occ = occ_t[i]
        if occ > ii:
            occ = ii
        placed = False
        opts = fu_opts[i]
        if occ == 1:
            # Single-row reservations (every pipelined op) collapse the
            # row scans to one table probe; same slot/option visit order.
            row = t0 % ii
            if len(opts) == 1:
                k0 = opts[0]
                rows0 = mrt[k0]
                cap0 = capacity[k0]
                for t in range(t0, t0 + ii):
                    if rows0[row] < cap0:
                        rows0[row] += 1
                        start[i] = t
                        placed_kind[i] = k0
                        last_tried[i] = t
                        placed = True
                        break
                    row += 1
                    if row == ii:
                        row = 0
            else:
                for t in range(t0, t0 + ii):
                    kind = -1
                    for k in opts:
                        rows = mrt[k]
                        if rows[row] < capacity[k]:
                            rows[row] += 1
                            kind = k
                            break
                    if kind >= 0:
                        start[i] = t
                        placed_kind[i] = kind
                        last_tried[i] = t
                        placed = True
                        break
                    row += 1
                    if row == ii:
                        row = 0
        else:
            for t in range(t0, t0 + ii):
                kind = -1
                for k in opts:
                    cap = capacity[k]
                    rows = mrt[k]
                    free = True
                    for r in range(occ):
                        if rows[(t + r) % ii] >= cap:
                            free = False
                            break
                    if free:
                        for r in range(occ):
                            rows[(t + r) % ii] += 1
                        kind = k
                        break
                if kind >= 0:
                    start[i] = t
                    placed_kind[i] = kind
                    last_tried[i] = t
                    placed = True
                    break
        if not placed:
            # Force placement and eject resource conflicts at that slot.
            t = t0
            target_rows = {(t + r) % ii for r in range(occ)}
            ejected = []
            for j in range(n):
                kind_j = placed_kind[j]
                if j == i or kind_j < 0 or kind_j not in opts:
                    continue
                sj = start[j]
                occ_j = occ_t[j]
                if occ_j == 1:
                    row_j = sj % ii
                    if row_j in target_rows:
                        mrt[kind_j][row_j] -= 1
                        start[j] = None
                        placed_kind[j] = -1
                        ejected.append(j)
                    continue
                if occ_j > ii:
                    occ_j = ii
                rows_j = {(sj + r) % ii for r in range(occ_j)}
                if rows_j & target_rows:
                    rows = mrt[kind_j]
                    for r in range(occ_j):
                        rows[(sj + r) % ii] -= 1
                    start[j] = None
                    placed_kind[j] = -1
                    ejected.append(j)
            kind = -1
            for k in opts:
                cap = capacity[k]
                rows = mrt[k]
                free = True
                for r in range(occ):
                    if rows[(t + r) % ii] >= cap:
                        free = False
                        break
                if free:
                    for r in range(occ):
                        rows[(t + r) % ii] += 1
                    kind = k
                    break
            if kind < 0:
                return None
            start[i] = t
            placed_kind[i] = kind
            last_tried[i] = t
            worklist.extend(ejected)
        # Eject scheduled successors whose dependence constraints broke.
        si = start[i]
        for j, lat, dist in succs[i]:
            sj = start[j]
            if sj is None:
                continue
            if si + lat - ii * dist > sj:
                k = placed_kind[j]
                if k >= 0:
                    occ_j = occ_t[j]
                    if occ_j == 1:
                        mrt[k][sj % ii] -= 1
                    else:
                        if occ_j > ii:
                            occ_j = ii
                        rows = mrt[k]
                        for r in range(occ_j):
                            rows[(sj + r) % ii] -= 1
                start[j] = None
                placed_kind[j] = -1
                push(j)

    return [int(s) for s in start]


# ----------------------------------------------------------------------
# Reference implementation (pre-SchedPrecomp, retained verbatim).
#
# The equivalence tests assert `modulo_schedule` matches this bit for bit,
# and `repro-unroll bench` runs it as the baseline labeling engine.
# ----------------------------------------------------------------------


def resource_mii_reference(deps: DependenceGraph, machine: MachineModel) -> float:
    """Fractional resource-constrained minimum initiation interval."""
    usage: dict[FUKind, float] = {kind: 0.0 for kind in FUKind}
    atype = 0.0  # flexible ops that may issue on INT or MEM units
    total_slots = 0.0
    for inst in deps.body:
        occ = 1.0 if machine.is_pipelined(inst) else float(machine.latency(inst))
        total_slots += 1.0
        options = machine.fu_options(inst)
        if len(options) > 1:
            atype += occ
        else:
            usage[options[0]] += occ

    counts = {kind: machine.fu_counts.get(kind, 0) for kind in FUKind}
    n_branches = sum(1 for inst in deps.body if inst.op.is_branch)
    bounds = [
        usage[FUKind.MEM] / counts[FUKind.MEM],
        usage[FUKind.FP] / counts[FUKind.FP],
        usage[FUKind.BR] / counts[FUKind.BR],
        # A-type ops share the INT and MEM files with the dedicated users.
        (usage[FUKind.INT] + usage[FUKind.MEM] + atype)
        / (counts[FUKind.INT] + counts[FUKind.MEM]),
        # Each branch closes its issue group, so it effectively costs a
        # whole cycle on top of the non-branch issue bandwidth.
        n_branches + (total_slots - n_branches) / machine.issue_width,
    ]
    return max(bounds)


def recurrence_mii_reference(deps: DependenceGraph, machine: MachineModel) -> int:
    """Recurrence-constrained minimum II: the ceiling of the maximum cycle
    ratio (sum of latencies / sum of distances) over dependence cycles."""
    n = len(deps.body)
    if n == 0:
        return 1
    best = 1
    for component in _strongly_connected(deps):
        if len(component) == 1:
            node = next(iter(component))
            # Self-loop?
            ratios = [
                -(-edge_latency(e, deps.body, machine) // e.distance)
                for t, e in deps.succs[node]
                if t == node and e.distance >= 1
            ]
            if ratios:
                best = max(best, max(ratios))
            continue
        best = max(best, _max_cycle_ratio(deps, component, machine))
    return best


def _strongly_connected(deps: DependenceGraph) -> list[set[int]]:
    """Iterative Tarjan SCC over the full dependence graph."""
    n = len(deps.body)
    index = [0] * n
    lowlink = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: list[int] = []
    components: list[set[int]] = []
    counter = [1]

    for root in range(n):
        if visited[root]:
            continue
        work = [(root, iter([t for t, _ in deps.succs[root]]))]
        visited[root] = True
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if not visited[succ]:
                    visited[succ] = True
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter([t for t, _ in deps.succs[succ]])))
                    advanced = True
                    break
                if on_stack[succ] and index[succ] < lowlink[node]:
                    lowlink[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                component: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _max_cycle_ratio(deps: DependenceGraph, component: set[int], machine: MachineModel) -> int:
    """Smallest integer II admitting no positive cycle with edge weights
    ``latency - II * distance`` inside ``component`` (Lawler's method)."""
    edges = []
    total_lat = 0
    for node in component:
        for succ, edge in deps.succs[node]:
            if succ in component:
                lat = edge_latency(edge, deps.body, machine)
                edges.append((node, succ, lat, edge.distance))
                total_lat += lat
    lo, hi = 1, max(total_lat, 1)
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_positive_cycle(component, edges, mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


def modulo_schedule_reference(
    deps: DependenceGraph,
    machine: MachineModel,
    ii_budget: int = 48,
) -> ModuloSchedule:
    """Find a kernel schedule, searching IIs upward from MII."""
    res = resource_mii_reference(deps, machine)
    rec = recurrence_mii_reference(deps, machine)
    mii = max(-(-int(res * 1_000_000) // 1_000_000), rec, 1)
    n = len(deps.body)
    for ii in range(mii, mii + ii_budget):
        start = _try_ii(deps, machine, ii, budget=max(64, n * 10))
        if start is not None:
            horizon = max(start) if start else 0
            stages = horizon // ii + 1
            return ModuloSchedule(ii, stages, tuple(start), res, rec)
    raise ModuloScheduleError(
        f"no feasible II within [{mii}, {mii + ii_budget}) for a {n}-op body"
    )


def _try_ii(deps: DependenceGraph, machine: MachineModel, ii: int, budget: int):
    """One IMS attempt at a fixed II.  Returns start times or ``None``."""
    body = deps.body
    n = len(body)
    height = [machine.latency(inst) for inst in body]
    for i in range(n - 1, -1, -1):
        for j, edge in deps.succs[i]:
            if edge.distance == 0:
                lat = edge_latency(edge, body, machine)
                if height[j] + lat > height[i]:
                    height[i] = height[j] + lat

    order = sorted(range(n), key=lambda i: (-height[i], i))
    start: list[int | None] = [None] * n
    last_tried = [-1] * n
    # Modulo reservation table: per unit kind, per row, the occupied count.
    mrt: dict[FUKind, list[int]] = {
        kind: [0] * ii for kind in FUKind
    }
    placed_kind: list[FUKind | None] = [None] * n

    def occupancy(i: int) -> int:
        inst = body[i]
        return 1 if machine.is_pipelined(inst) else min(machine.latency(inst), ii)

    def reserve(i: int, t: int) -> FUKind | None:
        occ = occupancy(i)
        for kind in machine.fu_options(body[i]):
            capacity = machine.fu_counts.get(kind, 0)
            rows = [(t + r) % ii for r in range(occ)]
            if all(mrt[kind][row] < capacity for row in rows):
                for row in rows:
                    mrt[kind][row] += 1
                return kind
        return None

    def release(i: int) -> None:
        kind = placed_kind[i]
        if kind is None or start[i] is None:
            return
        occ = occupancy(i)
        for r in range(occ):
            mrt[kind][(start[i] + r) % ii] -= 1

    def estart(i: int) -> int:
        bound = 0
        for j, edge in deps.preds[i]:
            if start[j] is None:
                continue
            lat = edge_latency(edge, body, machine)
            candidate = start[j] + lat - ii * edge.distance
            if candidate > bound:
                bound = candidate
        return bound

    worklist = list(order)
    while worklist:
        if budget <= 0:
            return None
        budget -= 1
        i = worklist.pop(0)
        lo = estart(i)
        t0 = max(lo, last_tried[i] + 1)
        placed = False
        for t in range(t0, t0 + ii):
            kind = reserve(i, t)
            if kind is not None:
                start[i] = t
                placed_kind[i] = kind
                last_tried[i] = t
                placed = True
                break
        if not placed:
            # Force placement and eject resource conflicts at that slot.
            t = t0
            ejected = _eject_conflicts(deps, machine, mrt, start, placed_kind, t, i, ii, occupancy)
            kind = reserve(i, t)
            if kind is None:
                return None
            start[i] = t
            placed_kind[i] = kind
            last_tried[i] = t
            worklist.extend(ejected)
        # Eject scheduled successors whose dependence constraints broke.
        for j, edge in deps.succs[i]:
            if start[j] is None:
                continue
            lat = edge_latency(edge, body, machine)
            if start[i] + lat - ii * edge.distance > start[j]:
                release(j)
                start[j] = None
                placed_kind[j] = None
                worklist.append(j)

    return [int(s) for s in start]


def _eject_conflicts(deps, machine, mrt, start, placed_kind, t, i, ii, occupancy):
    """Remove enough scheduled ops to free a unit for ``i`` at time ``t``."""
    target_rows = {(t + r) % ii for r in range(occupancy(i))}
    options = set(machine.fu_options(deps.body[i]))
    ejected = []
    for j in range(len(deps.body)):
        if j == i or start[j] is None or placed_kind[j] not in options:
            continue
        rows_j = {(start[j] + r) % ii for r in range(occupancy(j))}
        if rows_j & target_rows:
            kind = placed_kind[j]
            for r in range(occupancy(j)):
                mrt[kind][(start[j] + r) % ii] -= 1
            start[j] = None
            placed_kind[j] = None
            ejected.append(j)
    return ejected


# ----------------------------------------------------------------------
# Register pressure under software pipelining.
# ----------------------------------------------------------------------


def swp_register_pressure(deps: DependenceGraph, sched: ModuloSchedule) -> tuple[int, int]:
    """Rotating-register requirement ``(int, fp)``.

    Each value whose lifetime spans ``L`` cycles needs ``ceil(L / II)``
    rotating registers, because that many in-flight copies coexist.
    """
    body = deps.body
    def_time: dict = {}
    last_use: dict = {}
    for i, inst in enumerate(body):
        for reg in inst.reg_dests():
            def_time[reg] = sched.start[i]
        for reg in inst.reg_srcs():
            use = sched.start[i]
            if use > last_use.get(reg, -1):
                last_use[reg] = use
    int_regs = fp_regs = 0
    for reg in set(def_time) | set(last_use):
        if reg.dtype is DType.PRED:
            continue
        born = def_time.get(reg, 0)
        died = last_use.get(reg, born)
        if died < born:
            died = born + sched.ii  # carried value: spans an iteration
        lifetime = max(died - born, 1)
        need = -(-lifetime // sched.ii)
        if reg.dtype is DType.F64:
            fp_regs += need
        else:
            int_regs += need
    return int_regs, fp_regs
