"""Register-pressure estimation over a schedule.

MAXLIVE — the peak number of simultaneously live values — decides whether a
loop body fits the register file.  Unrolling multiplies live values, and the
resulting spill traffic is one of the paper's headline reasons why "more
unrolling" is not free, so this estimate feeds both the cycle simulator and
the ``live range size`` feature the paper's feature-selection study ranks
highly.

Live intervals over one body execution:

* a value defined at cycle ``c`` and last used at cycle ``u`` is live on
  ``[c, u]``;
* loop-invariant live-ins occupy a register for the whole body;
* loop-carried values are live from body start to their last use (the
  incoming copy) *and* from their definition to body end (the outgoing
  copy) — conservatively the whole body.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dependence import DependenceGraph
from repro.ir.types import DType
from repro.sched.list_scheduler import ListSchedule


@dataclass(frozen=True)
class PressureEstimate:
    """Peak simultaneous live values, split by register file."""

    int_live: int
    fp_live: int

    @property
    def total(self) -> int:
        return self.int_live + self.fp_live


def max_live(deps: DependenceGraph, schedule: ListSchedule) -> PressureEstimate:
    """MAXLIVE of one scheduled body execution."""
    body = deps.body
    n = len(body)
    horizon = (max(schedule.start) if n else 0) + 1

    # Map each register to its definition cycle and last-use cycle.
    def_cycle: dict = {}
    last_use: dict = {}
    for i, inst in enumerate(body):
        for reg in inst.reg_dests():
            def_cycle[reg] = schedule.start[i]
        for reg in inst.reg_srcs():
            cycle = schedule.start[i]
            if cycle > last_use.get(reg, -1):
                last_use[reg] = cycle

    events_int: list[tuple[int, int]] = []
    events_fp: list[tuple[int, int]] = []
    all_regs = set(def_cycle) | set(last_use)
    for reg in all_regs:
        if reg.dtype is DType.PRED:
            continue  # predicates live in their own (large) register file
        defined = reg in def_cycle
        used = reg in last_use
        if defined and used and last_use[reg] >= def_cycle[reg]:
            lo, hi = def_cycle[reg], last_use[reg]
        elif defined and used:
            # Used before defined: a carried value — live across the body.
            lo, hi = 0, horizon
        elif defined:
            # Defined, never read here: live out (carried or stored later).
            lo, hi = def_cycle[reg], horizon
        else:
            # Live-in only (invariant or incoming carried value).
            lo, hi = 0, horizon
        target = events_fp if reg.dtype is DType.F64 else events_int
        target.append((lo, 1))
        target.append((hi + 1, -1))

    return PressureEstimate(_peak(events_int), _peak(events_fp))


def _peak(events: list[tuple[int, int]]) -> int:
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        if live > peak:
            peak = live
    return peak


def spill_cycles(pressure: PressureEstimate, machine) -> float:
    """Extra cycles per body execution caused by spilling when MAXLIVE
    exceeds the available registers (zero when everything fits).

    The cost is superlinear in the excess: a value or two over the limit
    just shortens some live ranges (the allocator copes almost for free),
    but a large excess cascades — every spill's reload lengthens other live
    ranges, forcing more spills.  The exponent is a machine parameter.
    """
    excess_int = max(0, pressure.int_live - machine.regs_available(fp=False))
    excess_fp = max(0, pressure.fp_live - machine.regs_available(fp=True))
    excess = excess_int + excess_fp
    if excess == 0:
        return 0.0
    return machine.spill_cycles * excess**machine.spill_exponent
