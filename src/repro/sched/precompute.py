"""Precomputed scheduling tables for one loop body on one machine.

Both schedulers spend their inner loops asking the same questions about the
same body over and over: *what is this instruction's latency, which units can
it issue on, is it pipelined, what are its dependence edges and their
latencies?*  Answered through the IR (enum-keyed dicts, ``Opcode.info``
property chains, per-edge :func:`~repro.ir.dependence.edge_latency` calls),
those questions dominate wall-clock — profiling the labelling pipeline shows
well over half the modulo scheduler's time inside enum hashing and mapping
lookups.

:class:`SchedPrecomp` answers them once.  It flattens everything the
schedulers need into plain integer lists indexed by body position (and
functional units into small integer indices via :data:`FU_INDEX`), computes
the latency-weighted priority heights shared by the list scheduler and the
IMS pipeliner, and pre-resolves every dependence edge's scheduling latency.
The tables are *pure data*: building one never mutates the graph or the
machine, so a precomp can be cached alongside its dependence graph and
reused across every initiation-interval attempt, both scheduling regimes,
and repeated cost queries.

The schedulers consume these tables through their fast paths
(:func:`repro.sched.list_scheduler.list_schedule` and
:func:`repro.sched.modulo.modulo_schedule` accept an optional ``pre``); the
original table-free implementations are retained as ``*_reference``
functions, serving as correctness oracles for the equivalence tests and as
the honest baseline for ``repro-unroll bench``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dependence import DependenceGraph, edge_latency
from repro.ir.types import FUKind
from repro.machine.model import MachineModel

#: Stable small-integer index for each functional-unit kind.
FU_ORDER: tuple[FUKind, ...] = tuple(FUKind)
FU_INDEX: dict[FUKind, int] = {kind: idx for idx, kind in enumerate(FU_ORDER)}
N_FU_KINDS = len(FU_ORDER)


@dataclass(frozen=True)
class SchedPrecomp:
    """Integer scheduling tables for one ``(body, machine)`` pair.

    Edge adjacency preserves the dependence graph's edge order exactly, so a
    scheduler walking these tables visits neighbours in the same order as
    one walking ``deps.succs`` / ``deps.preds`` — a requirement for
    bit-identical schedules, since several tie-breaks depend on visit order.
    """

    deps: DependenceGraph
    machine: MachineModel
    n: int
    #: Result latency per body position (under ``machine``).
    lat: tuple[int, ...]
    #: Reservation occupancy per position: 1 if pipelined, else the latency
    #: (the modulo scheduler additionally clamps this to the current II).
    occ: tuple[int, ...]
    #: Issuable unit kinds per position, as FU indices, in option order.
    fu_opts: tuple[tuple[int, ...], ...]
    is_branch: tuple[bool, ...]
    n_branches: int
    #: Latency-weighted height to the DAG sinks over distance-0 edges — the
    #: priority function shared by the list scheduler and the pipeliner.
    height: tuple[int, ...]
    #: Body positions sorted by (-height, position): IMS scheduling order.
    order: tuple[int, ...]
    #: All-edge adjacency: per node, ``(neighbor, latency, distance)``.
    succs: tuple[tuple[tuple[int, int, int], ...], ...]
    preds: tuple[tuple[tuple[int, int, int], ...], ...]
    #: Distance-0 adjacency only: per node, ``(neighbor, latency)``.
    succs0: tuple[tuple[tuple[int, int], ...], ...]
    preds0_count: tuple[int, ...]
    #: Carried edges in graph edge order: ``(src, dst, latency, distance)``.
    carried: tuple[tuple[int, int, int, int], ...]
    #: Unit count per FU index.
    fu_capacity: tuple[int, ...]
    issue_width: int

    @classmethod
    def build(cls, deps: DependenceGraph, machine: MachineModel) -> "SchedPrecomp":
        body = deps.body
        n = len(body)
        # Latency, occupancy, unit options, and branch-ness are functions of
        # the opcode alone, so they are resolved once per (machine, opcode)
        # and cached on the machine instance (derived machines answer these
        # questions for every instruction of every body they schedule).
        op_rows = machine.__dict__.get("_sched_op_rows")
        if op_rows is None:
            op_rows = {}
            object.__setattr__(machine, "_sched_op_rows", op_rows)
        lat = []
        occ = []
        fu_opts = []
        is_branch = []
        for inst in body:
            op = inst.op
            row = op_rows.get(op)
            if row is None:
                op_lat = machine.op_latency(op)
                row = (
                    op_lat,
                    1 if op.info.pipelined else op_lat,
                    tuple(FU_INDEX[k] for k in machine.op_fu_options(op)),
                    op.is_branch,
                )
                op_rows[op] = row
            lat.append(row[0])
            occ.append(row[1])
            fu_opts.append(row[2])
            is_branch.append(row[3])

        succs: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
        preds: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
        succs0: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        preds0_count = [0] * n
        carried: list[tuple[int, int, int, int]] = []
        edge_lat = {}
        for edge in deps.edges:
            edge_lat[edge] = edge_latency(edge, body, machine)
        for i in range(n):
            for j, edge in deps.succs[i]:
                elat = edge_lat[edge]
                succs[i].append((j, elat, edge.distance))
                if edge.distance == 0:
                    succs0[i].append((j, elat))
            for j, edge in deps.preds[i]:
                preds[i].append((j, edge_lat[edge], edge.distance))
                if edge.distance == 0:
                    preds0_count[i] += 1
        for edge in deps.edges:
            if edge.distance >= 1:
                carried.append((edge.src, edge.dst, edge_lat[edge], edge.distance))

        # Latency-weighted height over the distance-0 DAG (body order is a
        # topological order for distance-0 edges, so one reverse pass works).
        height = list(lat)
        for i in range(n - 1, -1, -1):
            for j, elat in succs0[i]:
                if height[j] + elat > height[i]:
                    height[i] = height[j] + elat

        order = tuple(sorted(range(n), key=lambda i: (-height[i], i)))
        capacity = tuple(machine.fu_counts.get(kind, 0) for kind in FU_ORDER)
        return cls(
            deps=deps,
            machine=machine,
            n=n,
            lat=tuple(lat),
            occ=tuple(occ),
            fu_opts=tuple(fu_opts),
            is_branch=tuple(is_branch),
            n_branches=sum(is_branch),
            height=tuple(height),
            order=order,
            succs=tuple(tuple(s) for s in succs),
            preds=tuple(tuple(p) for p in preds),
            succs0=tuple(tuple(s) for s in succs0),
            preds0_count=tuple(preds0_count),
            carried=tuple(carried),
            fu_capacity=capacity,
            issue_width=machine.issue_width,
        )
