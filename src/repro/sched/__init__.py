"""Schedulers: acyclic list scheduling, modulo scheduling, register pressure."""

from repro.sched.list_scheduler import (
    ListSchedule,
    list_schedule,
    list_schedule_reference,
    steady_state_cycles,
    steady_state_cycles_reference,
)
from repro.sched.modulo import (
    ModuloSchedule,
    ModuloScheduleError,
    modulo_schedule,
    modulo_schedule_reference,
    recurrence_mii,
    recurrence_mii_reference,
    resource_mii,
    resource_mii_reference,
    swp_register_pressure,
)
from repro.sched.precompute import SchedPrecomp
from repro.sched.regpressure import PressureEstimate, max_live, spill_cycles

__all__ = [
    "ListSchedule",
    "ModuloSchedule",
    "ModuloScheduleError",
    "PressureEstimate",
    "SchedPrecomp",
    "list_schedule",
    "list_schedule_reference",
    "max_live",
    "modulo_schedule",
    "modulo_schedule_reference",
    "recurrence_mii",
    "recurrence_mii_reference",
    "resource_mii",
    "resource_mii_reference",
    "spill_cycles",
    "steady_state_cycles",
    "steady_state_cycles_reference",
    "swp_register_pressure",
]
