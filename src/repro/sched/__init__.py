"""Schedulers: acyclic list scheduling, modulo scheduling, register pressure."""

from repro.sched.list_scheduler import ListSchedule, list_schedule, steady_state_cycles
from repro.sched.modulo import (
    ModuloSchedule,
    ModuloScheduleError,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
    swp_register_pressure,
)
from repro.sched.regpressure import PressureEstimate, max_live, spill_cycles

__all__ = [
    "ListSchedule",
    "ModuloSchedule",
    "ModuloScheduleError",
    "PressureEstimate",
    "list_schedule",
    "max_live",
    "modulo_schedule",
    "recurrence_mii",
    "resource_mii",
    "spill_cycles",
    "steady_state_cycles",
    "swp_register_pressure",
]
