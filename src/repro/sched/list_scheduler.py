"""Cycle scheduler for acyclic loop bodies (the SWP-disabled regime).

A classic critical-path list scheduler for an in-order EPIC machine: each
cycle it issues the highest-priority ready operations onto free functional
units, bounded by the machine's issue width, honoring operation latencies
and the non-pipelined units' blocking behaviour.

The *steady-state cost per body execution* is more than the schedule length:
successive iterations are separated by the taken-branch overhead and by any
loop-carried dependence whose producer finishes too late for the next
iteration's consumer (an in-order machine stalls on use).  See
:func:`steady_state_cycles`.

As in :mod:`repro.sched.modulo`, the public functions run on
:class:`~repro.sched.precompute.SchedPrecomp` integer tables (built on the
fly when not supplied) and the original implementations are retained as
``*_reference`` oracles for the equivalence tests and the bench baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dependence import DependenceGraph, edge_latency
from repro.ir.instruction import Instruction
from repro.ir.types import FUKind
from repro.machine.model import MachineModel
from repro.sched.precompute import N_FU_KINDS, SchedPrecomp


@dataclass(frozen=True)
class ListSchedule:
    """Result of list scheduling one body."""

    start: tuple[int, ...]  # issue cycle of each body position
    issue_length: int  # last issue cycle + 1
    completion_length: int  # last result-ready cycle

    def __len__(self) -> int:
        return len(self.start)


def list_schedule(
    deps: DependenceGraph, machine: MachineModel, pre: SchedPrecomp | None = None
) -> ListSchedule:
    """Schedule the body of ``deps`` on ``machine``.

    Only intra-iteration (distance-0) dependences constrain the acyclic
    schedule; carried dependences are applied afterwards by
    :func:`steady_state_cycles`.
    """
    if pre is None:
        pre = SchedPrecomp.build(deps, machine)
    n = pre.n
    if n == 0:
        return ListSchedule((), 0, 0)

    height = pre.height
    occ_t = pre.occ
    fu_opts = pre.fu_opts
    succs0 = pre.succs0
    is_branch = pre.is_branch
    issue_width = pre.issue_width

    n_preds = list(pre.preds0_count)
    earliest = [0] * n
    ready = [i for i in range(n) if n_preds[i] == 0]
    start = [-1] * n
    scheduled = 0
    cycle = 0
    # Per-unit busy-until times (for non-pipelined operations).
    unit_free = [[0] * pre.fu_capacity[k] for k in range(N_FU_KINDS)]
    max_cycles = n * 64 + 256  # generous safety bound

    while scheduled < n:
        if cycle > max_cycles:
            raise RuntimeError("list scheduler failed to converge (dependence cycle?)")
        issued_this_cycle = 0
        # Highest priority first; stable order keeps results deterministic.
        ready.sort(key=lambda i: (-height[i], i))
        deferred: list[int] = []
        for i in ready:
            if issued_this_cycle >= issue_width:
                deferred.append(i)
                continue
            if earliest[i] > cycle:
                deferred.append(i)
                continue
            grabbed = False
            for k in fu_opts[i]:
                slots = unit_free[k]
                for idx in range(len(slots)):
                    if slots[idx] <= cycle:
                        slots[idx] = cycle + occ_t[i]
                        grabbed = True
                        break
                if grabbed:
                    break
            if not grabbed:
                deferred.append(i)
                continue
            start[i] = cycle
            scheduled += 1
            issued_this_cycle += 1
            if is_branch[i]:
                # A branch terminates the issue group: nothing issues in
                # the rest of this cycle (EPIC fetch groups end at taken-
                # branch candidates).  Multi-exit unrolled bodies pay for
                # every duplicated exit branch this way.
                issued_this_cycle = issue_width
            for j, lat in succs0[i]:
                if cycle + lat > earliest[j]:
                    earliest[j] = cycle + lat
                n_preds[j] -= 1
                if n_preds[j] == 0:
                    deferred.append(j)
        ready = deferred
        cycle += 1

    issue_length = max(start) + 1
    completion = max(start[i] + pre.lat[i] for i in range(n))
    return ListSchedule(tuple(start), issue_length, completion)


def steady_state_cycles(
    deps: DependenceGraph,
    schedule: ListSchedule,
    machine: MachineModel,
    pre: SchedPrecomp | None = None,
) -> int:
    """Cycles separating successive body executions in steady state.

    Three terms compose the period:

    * the *resource* cycles the body's slots need (including one whole
      cycle per branch, which terminates its issue group);
    * the latency stalls of the schedule, of which a machine-dependent
      fraction (``overlap_efficiency``) is hidden by overlap with the
      neighbouring iterations;
    * every loop-carried dependence ``src -> dst`` (distance ``d``) must be
      covered within ``d`` body periods, or the consumer stalls.
    """
    if pre is None:
        pre = SchedPrecomp.build(deps, machine)
    n_branches = pre.n_branches
    resource_cycles = n_branches + -(-max(pre.n - n_branches, 0) // pre.issue_width)
    stall_cycles = max(0, schedule.issue_length - resource_cycles)
    effective_issue = schedule.issue_length - machine.overlap_efficiency * stall_cycles
    period = max(resource_cycles, int(round(effective_issue))) + machine.backedge_cycles
    for src, dst, lat, dist in pre.carried:
        slack_needed = schedule.start[src] + lat - schedule.start[dst]
        if slack_needed > 0:
            required = -(-slack_needed // dist)  # ceil division
            if required > period:
                period = required
    return period


# ----------------------------------------------------------------------
# Reference implementation (pre-SchedPrecomp, retained verbatim).
# ----------------------------------------------------------------------


def list_schedule_reference(deps: DependenceGraph, machine: MachineModel) -> ListSchedule:
    """Schedule the body of ``deps`` on ``machine`` (reference oracle)."""
    body = deps.body
    n = len(body)
    if n == 0:
        return ListSchedule((), 0, 0)

    # Priority: latency-weighted height to the DAG sinks.
    height = [machine.latency(inst) for inst in body]
    for i in range(n - 1, -1, -1):
        for j, edge in deps.succs[i]:
            if edge.distance == 0:
                lat = edge_latency(edge, body, machine)
                if height[j] + lat > height[i]:
                    height[i] = height[j] + lat

    n_preds = [0] * n
    earliest = [0] * n
    for i in range(n):
        n_preds[i] = sum(1 for _, e in deps.preds[i] if e.distance == 0)

    ready = [i for i in range(n) if n_preds[i] == 0]
    start = [-1] * n
    scheduled = 0
    cycle = 0
    # Per-unit busy-until times (for non-pipelined operations).
    unit_free: dict[FUKind, list[int]] = {
        kind: [0] * machine.fu_counts.get(kind, 0) for kind in FUKind
    }
    max_cycles = n * 64 + 256  # generous safety bound

    while scheduled < n:
        if cycle > max_cycles:
            raise RuntimeError("list scheduler failed to converge (dependence cycle?)")
        issued_this_cycle = 0
        # Highest priority first; stable order keeps results deterministic.
        ready.sort(key=lambda i: (-height[i], i))
        deferred: list[int] = []
        for i in ready:
            if issued_this_cycle >= machine.issue_width:
                deferred.append(i)
                continue
            if earliest[i] > cycle:
                deferred.append(i)
                continue
            unit = _grab_unit(unit_free, machine, body[i], cycle)
            if unit is None:
                deferred.append(i)
                continue
            start[i] = cycle
            scheduled += 1
            issued_this_cycle += 1
            if body[i].op.is_branch:
                # A branch terminates the issue group: nothing issues in
                # the rest of this cycle (EPIC fetch groups end at taken-
                # branch candidates).  Multi-exit unrolled bodies pay for
                # every duplicated exit branch this way.
                issued_this_cycle = machine.issue_width
            for j, edge in deps.succs[i]:
                if edge.distance != 0:
                    continue
                lat = edge_latency(edge, body, machine)
                if cycle + lat > earliest[j]:
                    earliest[j] = cycle + lat
                n_preds[j] -= 1
                if n_preds[j] == 0:
                    deferred.append(j)
        ready = deferred
        cycle += 1

    issue_length = max(start) + 1
    completion = max(start[i] + machine.latency(body[i]) for i in range(n))
    return ListSchedule(tuple(start), issue_length, completion)


def _grab_unit(
    unit_free: dict[FUKind, list[int]],
    machine: MachineModel,
    inst: Instruction,
    cycle: int,
) -> FUKind | None:
    """Reserve a functional unit for ``inst`` at ``cycle`` if one is free."""
    occupancy = 1 if machine.is_pipelined(inst) else machine.latency(inst)
    for kind in machine.fu_options(inst):
        slots = unit_free[kind]
        for idx, free_at in enumerate(slots):
            if free_at <= cycle:
                slots[idx] = cycle + occupancy
                return kind
    return None


def steady_state_cycles_reference(
    deps: DependenceGraph, schedule: ListSchedule, machine: MachineModel
) -> int:
    """Steady-state period (reference oracle); see :func:`steady_state_cycles`."""
    body = deps.body
    n_branches = sum(1 for inst in body if inst.op.is_branch)
    resource_cycles = n_branches + -(-max(len(body) - n_branches, 0) // machine.issue_width)
    stall_cycles = max(0, schedule.issue_length - resource_cycles)
    effective_issue = schedule.issue_length - machine.overlap_efficiency * stall_cycles
    period = max(resource_cycles, int(round(effective_issue))) + machine.backedge_cycles
    for edge in deps.carried_edges():
        lat = edge_latency(edge, body, machine)
        slack_needed = schedule.start[edge.src] + lat - schedule.start[edge.dst]
        if slack_needed > 0:
            required = -(-slack_needed // edge.distance)  # ceil division
            if required > period:
                period = required
    return period
