"""repro: a full reproduction of "Predicting Unroll Factors Using Supervised
Classification" (Stephenson & Amarasinghe, CGO 2005) on a simulated EPIC
substrate.

Layering (bottom up):

- :mod:`repro.ir` — executable loop IR with dependence analysis;
- :mod:`repro.machine` — EPIC machine descriptions (Itanium-2-like default);
- :mod:`repro.transforms` — unrolling and the post-unroll cleanup passes;
- :mod:`repro.sched` — list scheduling, modulo scheduling, register pressure;
- :mod:`repro.simulate` — the cycle cost model, caches, measurement noise;
- :mod:`repro.instrument` — loop timers and the raw-data release format;
- :mod:`repro.features` — the 38-feature catalog and extractor;
- :mod:`repro.workloads` — kernels, body patterns, the 72-benchmark suite;
- :mod:`repro.ml` — NN, LS-SVM with output codes, LDA, CV, selection;
- :mod:`repro.heuristics` — ORC-like baselines, oracle, learned wrappers;
- :mod:`repro.pipeline` — measure, label, cache, evaluate speedups.

Quickstart::

    from repro import quick_predict
    from repro.workloads.kernels import daxpy

    factor = quick_predict(daxpy())
"""

from repro.ir import Loop, LoopBuilder, TripInfo
from repro.machine import ITANIUM2, MachineModel
from repro.ml import LoopDataset, NearNeighborClassifier, OutputCodeClassifier
from repro.pipeline import build_artifacts
from repro.simulate import CostModel

__version__ = "1.0.0"


def quick_predict(loop, swp: bool = False, loops_scale: float = 0.25, seed: int = 20050320):
    """Predict an unroll factor for ``loop`` with an SVM heuristic trained
    on the (cached) default dataset — the one-call demo entry point."""
    from repro.heuristics import train_svm_heuristic

    artifacts = build_artifacts(suite_seed=seed, loops_scale=loops_scale, swp=swp)
    heuristic = train_svm_heuristic(artifacts.dataset)
    return heuristic.predict_loop(loop)


__all__ = [
    "CostModel",
    "ITANIUM2",
    "Loop",
    "LoopBuilder",
    "LoopDataset",
    "MachineModel",
    "NearNeighborClassifier",
    "OutputCodeClassifier",
    "TripInfo",
    "build_artifacts",
    "quick_predict",
    "__version__",
]
