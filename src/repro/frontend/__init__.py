"""Textual frontend: a small loop language parsed into the IR."""

from repro.frontend.lexer import LexError, Token, TokenKind, tokenize
from repro.frontend.parser import ParsedLoop, ParseError, parse_loop, parse_program
from repro.frontend.unparse import to_source

__all__ = [
    "LexError",
    "ParseError",
    "ParsedLoop",
    "Token",
    "TokenKind",
    "parse_loop",
    "parse_program",
    "to_source",
    "tokenize",
]
