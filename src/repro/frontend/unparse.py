"""Unparser: serialise a Loop back into the textual loop language.

``parse_loop(to_source(loop))`` reconstructs a structurally identical loop,
which gives the frontend a strong round-trip property test and gives users
a way to dump generated/transformed loops into editable files.
"""

from __future__ import annotations

from repro.ir.instruction import Instruction
from repro.ir.loop import Loop
from repro.ir.types import DType, Language, Opcode
from repro.ir.values import Imm, MemRef, Reg

_LANG_NAMES = {
    Language.C: "c",
    Language.FORTRAN: "f77",
    Language.FORTRAN90: "f90",
}

_OP_NAMES = {
    Opcode.ADD: "add", Opcode.SUB: "sub", Opcode.MUL: "mul", Opcode.DIV: "div",
    Opcode.REM: "rem", Opcode.SHL: "shl", Opcode.SHR: "shr", Opcode.AND: "and",
    Opcode.OR: "or", Opcode.XOR: "xor", Opcode.SXT: "sxt",
    Opcode.FADD: "fadd", Opcode.FSUB: "fsub", Opcode.FMUL: "fmul",
    Opcode.FDIV: "fdiv", Opcode.FMA: "fma", Opcode.FNEG: "fneg",
    Opcode.CVT: "cvt",
}


def _operand(value) -> str:
    if isinstance(value, Reg):
        return f"%{value.name}"
    if isinstance(value, Imm):
        if value.dtype is DType.F64:
            text = repr(float(value.value))
            return text if ("." in text or "e" in text) else text + ".0"
        return str(int(value.value))
    raise TypeError(f"unexpected operand {value!r}")


def _memref(mem: MemRef) -> str:
    if mem.indirect:
        return f"{mem.array}[%{mem.index_reg.name}]"
    coeff, offset = mem.index.coeff, mem.index.offset
    if coeff == 0:
        inner = str(offset)
    else:
        inner = "i" if coeff == 1 else f"{coeff}*i"
        if offset > 0:
            inner += f"+{offset}"
        elif offset < 0:
            inner += f"-{-offset}"
    return f"{mem.array}[{inner}]"


def _statement(inst: Instruction) -> str:
    prefix = f"(%{inst.pred.name}) " if inst.pred is not None else ""
    op = inst.op
    if op is Opcode.BR_EXIT:
        # exit_if carries its own predicate; the shared prefix would be
        # redundant syntax.
        return f"exit_if %{inst.pred.name}"
    if op is Opcode.STORE:
        return f"{prefix}store {_operand(inst.srcs[0])} -> {_memref(inst.mem)}"
    if op is Opcode.LOAD:
        mnemonic = "load.i" if inst.dest.dtype is DType.I64 else "load"
        return f"{prefix}%{inst.dest.name} = {mnemonic} {_memref(inst.mem)}"
    if op is Opcode.LOAD_PAIR:
        return (
            f"{prefix}%{inst.dest.name}, %{inst.dest2.name} = ldpair "
            f"{_memref(inst.mem)}"
        )
    if op in (Opcode.CMP, Opcode.FCMP):
        base = "fcmp" if op is Opcode.FCMP else "cmp"
        args = ", ".join(_operand(s) for s in inst.srcs)
        return f"{prefix}%{inst.dest.name} = {base}.{inst.cmp_op.value} {args}"
    if op is Opcode.SELECT:
        suffix = ".i" if inst.dest.dtype is DType.I64 else ""
        args = ", ".join(_operand(s) for s in inst.srcs)
        return f"{prefix}%{inst.dest.name} = select{suffix} {args}"
    if op is Opcode.MOV:
        suffix = ".i" if inst.dest.dtype is DType.I64 else ""
        return f"{prefix}%{inst.dest.name} = mov{suffix} {_operand(inst.srcs[0])}"
    if op is Opcode.PREFETCH:
        raise ValueError("prefetch has no surface syntax")
    name = _OP_NAMES[op]
    args = ", ".join(_operand(s) for s in inst.srcs)
    return f"{prefix}%{inst.dest.name} = {name} {args}"


def to_source(loop: Loop, carried_inits: dict[Reg, float] | None = None) -> str:
    """Serialise ``loop`` into parseable loop-language text."""
    options = [f"trip={loop.trip.runtime}"]
    if loop.trip.known:
        options.append("known")
    if not loop.trip.counted:
        options.append("while")
    if loop.entry_count != 1:
        options.append(f"entries={loop.entry_count}")
    if loop.nest_level != 1:
        options.append(f"nest={loop.nest_level}")
    options.append(f"lang={_LANG_NAMES[loop.language]}")

    name = loop.name if loop.name.isidentifier() else f'"{loop.name}"'
    lines = [f"loop {name} {' '.join(options)}"]
    inits = carried_inits or {}
    for reg in sorted(loop.carried_regs(), key=lambda r: r.name):
        value = inits.get(reg, 0.0)
        rendered = repr(float(value)) if reg.dtype is DType.F64 else str(int(value))
        lines.append(f"  init %{reg.name} = {rendered}")
    for inst in loop.body:
        lines.append(f"  {_statement(inst)}")
    lines.append("end")
    return "\n".join(lines) + "\n"
