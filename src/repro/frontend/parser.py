"""Parser for the textual loop language.

Grammar (one statement per line; ``#`` comments)::

    loop NAME [trip=1024] [known] [while] [entries=16] [nest=2] [lang=f77]
      init %acc = 0.0                      # preheader value of a carried reg
      %x = load a[i]                       # affine load
      %j = load.i idx[i]                   # integer-typed load
      %g = load data[%j]                   # indirect (gather) load
      %s = fmul %x, 2.5
      %t = fma %x, %s, %acc
      %acc = fadd %acc, %t                 # read-before-write => carried
      %p = fcmp.gt %t, 10.0
      exit_if %p                           # early exit
      (%p) %u = fadd %x, %s                # predicated instruction
      store %t -> out[2*i+1]
    end

Affine indices are ``[c*i + o]`` with either part optional; ``[%reg]`` is an
indirect reference.  Register types are inferred: compares define
predicates, integer opcodes define I64, everything else F64; ``load.i``
forces an integer load.  A register read before it is written is a live-in
— carried if the body later writes it, invariant otherwise.

:func:`parse_loop` returns a validated :class:`repro.ir.loop.Loop`;
:func:`parse_program` handles multi-loop files.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instruction import Instruction
from repro.ir.loop import Loop, TripInfo
from repro.ir.types import MAX_UNROLL, CmpOp, DType, Language, Opcode
from repro.ir.validate import validate_loop
from repro.ir.values import AffineIndex, Imm, MemRef, Reg
from repro.frontend.lexer import Token, TokenKind, tokenize


class ParseError(ValueError):
    """Raised on malformed input, with line/column context."""


_INT_OPS = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL, "div": Opcode.DIV,
    "rem": Opcode.REM, "shl": Opcode.SHL, "shr": Opcode.SHR, "and": Opcode.AND,
    "or": Opcode.OR, "xor": Opcode.XOR, "sxt": Opcode.SXT,
}
_FP_OPS = {
    "fadd": Opcode.FADD, "fsub": Opcode.FSUB, "fmul": Opcode.FMUL,
    "fdiv": Opcode.FDIV, "fma": Opcode.FMA, "fneg": Opcode.FNEG,
    "cvt": Opcode.CVT,
}
_LANGS = {
    "c": Language.C,
    "f77": Language.FORTRAN, "fortran": Language.FORTRAN,
    "f90": Language.FORTRAN90, "fortran90": Language.FORTRAN90,
}


@dataclass
class ParsedLoop:
    """A parsed loop plus its carried-register preheader values."""

    loop: Loop
    carried_inits: dict[Reg, float]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def expect(self, kind: TokenKind, what: str) -> Token:
        token = self.advance()
        if token.kind is not kind:
            raise ParseError(
                f"line {token.line}:{token.column}: expected {what}, got {token.text!r}"
            )
        return token

    def error(self, token: Token, message: str) -> ParseError:
        return ParseError(f"line {token.line}:{token.column}: {message}")

    def skip_newlines(self) -> None:
        while self.peek().kind is TokenKind.NEWLINE:
            self.advance()

    # -- program --------------------------------------------------------

    def parse_program(self) -> list[ParsedLoop]:
        loops = []
        self.skip_newlines()
        while self.peek().kind is not TokenKind.EOF:
            loops.append(self.parse_loop())
            self.skip_newlines()
        if not loops:
            raise ParseError("no loops found")
        return loops

    # -- loop header ----------------------------------------------------

    def parse_loop(self) -> ParsedLoop:
        keyword = self.expect(TokenKind.IDENT, "'loop'")
        if keyword.text != "loop":
            raise self.error(keyword, "expected 'loop'")
        name_token = self.advance()
        if name_token.kind not in (TokenKind.IDENT, TokenKind.STRING):
            raise self.error(name_token, "expected a loop name")
        name = name_token.text

        trip, known, counted = 256, False, True
        entries, nest, language = 1, 1, Language.C
        while self.peek().kind is TokenKind.IDENT:
            option = self.advance()
            if option.text == "known":
                known = True
            elif option.text == "while":
                counted = False
            elif option.text in ("trip", "entries", "nest", "lang"):
                self.expect(TokenKind.EQUALS, "'='")
                value = self.advance()
                if option.text == "lang":
                    language = _LANGS.get(value.text.lower())
                    if language is None:
                        raise self.error(value, f"unknown language {value.text!r}")
                else:
                    if value.kind is not TokenKind.NUMBER:
                        raise self.error(value, "expected a number")
                    setting = int(float(value.text))
                    if option.text == "trip":
                        trip = setting
                    elif option.text == "entries":
                        entries = setting
                    else:
                        nest = setting
            else:
                raise self.error(option, f"unknown loop option {option.text!r}")
        self.expect(TokenKind.NEWLINE, "end of header line")

        builder = _BodyBuilder(trip)
        self.skip_newlines()
        while True:
            token = self.peek()
            if token.kind is TokenKind.IDENT and token.text == "end":
                self.advance()
                break
            if token.kind is TokenKind.EOF:
                raise self.error(token, "unterminated loop (missing 'end')")
            self.parse_statement(builder)
            self.skip_newlines()

        if not builder.body:
            raise ParseError(f"loop {name!r} has an empty body")
        loop = Loop(
            name=name,
            body=tuple(builder.body),
            trip=TripInfo(
                runtime=trip,
                compile_time=trip if known else None,
                counted=counted,
            ),
            nest_level=nest,
            language=language,
            entry_count=entries,
            arrays=dict(builder.arrays),
        )
        validate_loop(loop)
        return ParsedLoop(loop=loop, carried_inits=dict(builder.carried_inits))

    # -- statements -----------------------------------------------------

    def parse_statement(self, builder: "_BodyBuilder") -> None:
        token = self.peek()
        pred = None
        if token.kind is TokenKind.LPAREN:
            self.advance()
            pred_token = self.expect(TokenKind.REG, "a predicate register")
            self.expect(TokenKind.RPAREN, "')'")
            pred = builder.use(pred_token.text, DType.PRED, pred_token, self)
            token = self.peek()

        if token.kind is TokenKind.IDENT and token.text == "init":
            if pred is not None:
                raise self.error(token, "'init' cannot be predicated")
            self.advance()
            reg_token = self.expect(TokenKind.REG, "a register")
            self.expect(TokenKind.EQUALS, "'='")
            value_token = self.expect(TokenKind.NUMBER, "a number")
            dtype = DType.F64 if ("." in value_token.text or "e" in value_token.text.lower()) else DType.I64
            reg = builder.declare(reg_token.text, dtype, reg_token, self)
            builder.carried_inits[reg] = float(value_token.text)
            self.expect(TokenKind.NEWLINE, "end of line")
            return

        if token.kind is TokenKind.IDENT and token.text == "exit_if":
            self.advance()
            reg_token = self.expect(TokenKind.REG, "a predicate register")
            reg = builder.use(reg_token.text, DType.PRED, reg_token, self)
            builder.body.append(Instruction(Opcode.BR_EXIT, pred=reg))
            self.expect(TokenKind.NEWLINE, "end of line")
            return

        if token.kind is TokenKind.IDENT and token.text == "store":
            self.advance()
            value = self.parse_operand(builder, DType.F64)
            self.expect(TokenKind.ARROW, "'->'")
            mem = self.parse_memref(builder)
            builder.body.append(Instruction(Opcode.STORE, srcs=(value,), mem=mem, pred=pred))
            self.expect(TokenKind.NEWLINE, "end of line")
            return

        self.parse_assignment(builder, pred)

    def parse_assignment(self, builder: "_BodyBuilder", pred) -> None:
        dest_token = self.expect(TokenKind.REG, "a destination register")
        dest2_token = None
        if self.peek().kind is TokenKind.COMMA:
            self.advance()
            dest2_token = self.expect(TokenKind.REG, "a second destination")
        self.expect(TokenKind.EQUALS, "'='")
        op_token = self.expect(TokenKind.IDENT, "an opcode")
        op_name = op_token.text
        cmp_kind = None
        if self.peek().kind is TokenKind.DOT:
            self.advance()
            suffix = self.expect(TokenKind.IDENT, "an opcode suffix")
            op_name = f"{op_name}.{suffix.text}"

        # Loads (affine or indirect, optionally integer-typed or paired).
        if op_name in ("load", "load.i", "ldpair"):
            mem = self.parse_memref(builder)
            dtype = DType.I64 if op_name == "load.i" else DType.F64
            dest = builder.declare(dest_token.text, dtype, dest_token, self)
            if op_name == "ldpair":
                if dest2_token is None:
                    raise self.error(op_token, "ldpair needs two destinations")
                from dataclasses import replace as dc_replace

                dest2 = builder.declare(dest2_token.text, dtype, dest2_token, self)
                mem = dc_replace(mem, width=2)
                builder.body.append(
                    Instruction(Opcode.LOAD_PAIR, dest=dest, dest2=dest2, mem=mem, pred=pred)
                )
            else:
                builder.body.append(Instruction(Opcode.LOAD, dest=dest, mem=mem, pred=pred))
            self.expect(TokenKind.NEWLINE, "end of line")
            return
        if dest2_token is not None:
            raise self.error(dest2_token, "only ldpair takes two destinations")

        # Compares.
        if op_name.startswith(("cmp.", "fcmp.")):
            base, _, condition = op_name.partition(".")
            try:
                kind = CmpOp(condition)
            except ValueError:
                raise self.error(op_token, f"unknown comparison {condition!r}") from None
            fp = base == "fcmp"
            operand_type = DType.F64 if fp else DType.I64
            lhs = self.parse_operand(builder, operand_type)
            self.expect(TokenKind.COMMA, "','")
            rhs = self.parse_operand(builder, operand_type)
            dest = builder.declare(dest_token.text, DType.PRED, dest_token, self)
            builder.body.append(
                Instruction(
                    Opcode.FCMP if fp else Opcode.CMP,
                    dest=dest, srcs=(lhs, rhs), cmp_op=kind, pred=pred,
                )
            )
            self.expect(TokenKind.NEWLINE, "end of line")
            return

        # select %p, a, b  (type follows the value operands).
        if op_name in ("select", "select.i"):
            dtype = DType.I64 if op_name.endswith(".i") else DType.F64
            pred_operand = self.parse_operand(builder, DType.PRED)
            self.expect(TokenKind.COMMA, "','")
            if_true = self.parse_operand(builder, dtype)
            self.expect(TokenKind.COMMA, "','")
            if_false = self.parse_operand(builder, dtype)
            dest = builder.declare(dest_token.text, dtype, dest_token, self)
            builder.body.append(
                Instruction(Opcode.SELECT, dest=dest, srcs=(pred_operand, if_true, if_false), pred=pred)
            )
            self.expect(TokenKind.NEWLINE, "end of line")
            return

        if op_name in ("mov", "mov.i"):
            dtype = DType.I64 if op_name.endswith(".i") else DType.F64
            src = self.parse_operand(builder, dtype)
            dest = builder.declare(dest_token.text, dtype, dest_token, self)
            builder.body.append(Instruction(Opcode.MOV, dest=dest, srcs=(src,), pred=pred))
            self.expect(TokenKind.NEWLINE, "end of line")
            return

        # Plain arithmetic.
        if op_name in _INT_OPS:
            opcode, dtype = _INT_OPS[op_name], DType.I64
        elif op_name in _FP_OPS:
            opcode, dtype = _FP_OPS[op_name], DType.F64
        else:
            raise self.error(op_token, f"unknown opcode {op_name!r}")
        n_srcs = opcode.info.n_srcs
        srcs = [self.parse_operand(builder, dtype)]
        for _ in range(n_srcs - 1):
            self.expect(TokenKind.COMMA, "','")
            srcs.append(self.parse_operand(builder, dtype))
        dest = builder.declare(dest_token.text, dtype, dest_token, self)
        builder.body.append(Instruction(opcode, dest=dest, srcs=tuple(srcs), pred=pred))
        self.expect(TokenKind.NEWLINE, "end of line")

    # -- operands and memory references ----------------------------------

    def parse_operand(self, builder: "_BodyBuilder", expected: DType):
        token = self.advance()
        if token.kind is TokenKind.REG:
            return builder.use(token.text, expected, token, self)
        if token.kind is TokenKind.NUMBER:
            if expected is DType.F64 or "." in token.text or "e" in token.text.lower():
                return Imm(float(token.text), DType.F64 if expected is not DType.I64 else DType.I64)
            return Imm(int(token.text), DType.I64)
        raise self.error(token, f"expected an operand, got {token.text!r}")

    def parse_memref(self, builder: "_BodyBuilder") -> MemRef:
        array_token = self.expect(TokenKind.IDENT, "an array name")
        self.expect(TokenKind.LBRACKET, "'['")
        token = self.peek()
        if token.kind is TokenKind.REG:
            self.advance()
            index_reg = builder.use(token.text, DType.I64, token, self)
            self.expect(TokenKind.RBRACKET, "']'")
            builder.note_array(array_token.text, indirect=True)
            return MemRef(array_token.text, indirect=True, index_reg=index_reg)
        index = self.parse_affine(token)
        self.expect(TokenKind.RBRACKET, "']'")
        builder.note_array(array_token.text, index=index)
        return MemRef(array_token.text, index)

    def parse_affine(self, first: Token) -> AffineIndex:
        """``[c*i + o]`` with optional coefficient, optional offset, or a
        bare constant index."""
        coeff, offset = 0, 0
        token = self.advance()
        if token.kind is TokenKind.NUMBER:
            value = int(float(token.text))
            if self.peek().kind is TokenKind.STAR:
                self.advance()
                iv = self.expect(TokenKind.IDENT, "'i'")
                if iv.text != "i":
                    raise self.error(iv, "the induction variable is spelled 'i'")
                coeff = value
            else:
                return AffineIndex(0, value)
        elif token.kind is TokenKind.IDENT and token.text == "i":
            coeff = 1
        else:
            raise self.error(token, "expected an affine index")
        if self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            sign = 1 if self.advance().kind is TokenKind.PLUS else -1
            value = self.expect(TokenKind.NUMBER, "an offset")
            offset = sign * int(float(value.text))
        elif self.peek().kind is TokenKind.NUMBER and self.peek().text.startswith("-"):
            # The lexer folds a leading minus into the number ("i-3").
            offset = int(float(self.advance().text))
        return AffineIndex(coeff, offset)


class _BodyBuilder:
    """Register/array bookkeeping during parsing."""

    def __init__(self, trip: int):
        self.trip = trip
        self.body: list[Instruction] = []
        self.arrays: dict[str, int] = {}
        self.registers: dict[str, Reg] = {}
        self.carried_inits: dict[Reg, float] = {}

    def declare(self, name: str, dtype: DType, token: Token, parser: _Parser) -> Reg:
        existing = self.registers.get(name)
        if existing is not None:
            if existing.dtype is not dtype:
                raise parser.error(
                    token,
                    f"register %{name} is {existing.dtype.value}, "
                    f"redefined as {dtype.value}",
                )
            return existing
        reg = Reg(name, dtype)
        self.registers[name] = reg
        return reg

    def use(self, name: str, expected: DType, token: Token, parser: _Parser) -> Reg:
        existing = self.registers.get(name)
        if existing is not None:
            return existing
        # First sight at a use site: a live-in; adopt the expected type.
        reg = Reg(name, expected)
        self.registers[name] = reg
        return reg

    def note_array(self, name: str, index: AffineIndex | None = None, indirect: bool = False) -> None:
        if indirect:
            self.arrays.setdefault(name, max(self.trip, 64))
            return
        coeff, offset = index.coeff, index.offset
        if coeff >= 0:
            needed = coeff * (self.trip - 1 + MAX_UNROLL) + offset + 1
        else:
            needed = offset + 1
        self.arrays[name] = max(self.arrays.get(name, 0), needed, 1)


def parse_program(source: str) -> list[ParsedLoop]:
    """Parse a whole source file (one or more loops)."""
    return _Parser(tokenize(source)).parse_program()


def parse_loop(source: str) -> Loop:
    """Parse exactly one loop and return it."""
    loops = parse_program(source)
    if len(loops) != 1:
        raise ParseError(f"expected exactly one loop, found {len(loops)}")
    return loops[0].loop
