"""Lexer for the textual loop language.

The language is a readable serialisation of the IR — what the printer emits,
plus a header line.  The lexer produces a flat token stream with line/column
positions so the parser can report errors precisely.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Token categories of the loop language."""

    IDENT = "ident"  # load, fadd, loop, array names, keywords
    REG = "reg"  # %name
    NUMBER = "number"  # 42, -3, 2.5, -0.5
    STRING = "string"  # "176.gcc/loop_004"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    EQUALS = "="
    ARROW = "->"
    STAR = "*"
    PLUS = "+"
    MINUS = "-"
    DOT = "."
    NEWLINE = "newline"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexed token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


class LexError(ValueError):
    """Raised on unrecognised input."""


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<string>"[^"\n]*")
  | (?P<reg>%[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<number>-?\d+\.\d+(?:[eE][-+]?\d+)?|-?\d+(?:[eE][-+]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<arrow>->)
  | (?P<punct>[\[\](),=*+\-.])
  | (?P<space>[ \t\r]+)
  | (?P<newline>\n)
    """,
    re.VERBOSE,
)

_PUNCT = {
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    "=": TokenKind.EQUALS,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    ".": TokenKind.DOT,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize a whole source string.

    Comments (``# ...``) are skipped; blank lines collapse; an EOF token
    terminates the stream.
    """
    tokens: list[Token] = []
    line, line_start = 1, 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            snippet = source[position : position + 10]
            raise LexError(f"line {line}:{column}: unrecognised input {snippet!r}")
        position = match.end()
        kind = match.lastgroup
        text = match.group()
        column = match.start() - line_start + 1
        if kind in ("space", "comment"):
            continue
        if kind == "newline":
            if tokens and tokens[-1].kind is not TokenKind.NEWLINE:
                tokens.append(Token(TokenKind.NEWLINE, "\n", line, column))
            line += 1
            line_start = position
            continue
        if kind == "string":
            tokens.append(Token(TokenKind.STRING, text[1:-1], line, column))
        elif kind == "reg":
            tokens.append(Token(TokenKind.REG, text[1:], line, column))
        elif kind == "number":
            tokens.append(Token(TokenKind.NUMBER, text, line, column))
        elif kind == "ident":
            tokens.append(Token(TokenKind.IDENT, text, line, column))
        elif kind == "arrow":
            tokens.append(Token(TokenKind.ARROW, text, line, column))
        else:
            tokens.append(Token(_PUNCT[text], text, line, column))
    if tokens and tokens[-1].kind is not TokenKind.NEWLINE:
        tokens.append(Token(TokenKind.NEWLINE, "\n", line, 0))
    tokens.append(Token(TokenKind.EOF, "", line, 0))
    return tokens
