"""The feature catalog: all 38 static loop characteristics.

The paper extracts 38 features per unrollable loop and shows a subset in its
Table 1; this catalog defines our full set.  Indices are stable — the
feature-selection experiments (mutual information, greedy forward selection)
refer to features by position, and datasets persist feature matrices keyed
to this ordering.

Features marked ``table1=True`` correspond to rows the paper's Table 1
lists; the rest round the set out to 38 with characteristics the paper's
text and tables mention elsewhere (live range size and DAG fan-in appear in
its Table 3, known-tripcount in its Table 4, ResMII/RecMII are what its
"estimated cycle length" and software-pipelining discussion are about).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class FeatureKind(Enum):
    """Value domain of a feature — drives binning for mutual information."""

    COUNT = "count"  # non-negative integer
    CONTINUOUS = "continuous"
    BINARY = "binary"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class FeatureSpec:
    """Metadata for one feature."""

    index: int
    name: str
    description: str
    kind: FeatureKind
    table1: bool = False


FEATURES: tuple[FeatureSpec, ...] = (
    FeatureSpec(0, "nest_level", "The loop nest level.", FeatureKind.COUNT, True),
    FeatureSpec(1, "num_ops", "The number of ops. in loop body.", FeatureKind.COUNT, True),
    FeatureSpec(2, "num_fp_ops", "The number of floating point ops. in loop body.", FeatureKind.COUNT, True),
    FeatureSpec(3, "num_branches", "The number of branches in loop body.", FeatureKind.COUNT, True),
    FeatureSpec(4, "num_mem_ops", "The number of memory ops. in loop body.", FeatureKind.COUNT, True),
    FeatureSpec(5, "num_operands", "The number of operands in loop body.", FeatureKind.COUNT, True),
    FeatureSpec(6, "num_implicit", "The number of implicit instructions in loop body.", FeatureKind.COUNT, True),
    FeatureSpec(7, "num_unique_predicates", "The number of unique predicates in loop body.", FeatureKind.COUNT, True),
    FeatureSpec(8, "critical_path", "The estimated latency of the critical path of loop.", FeatureKind.COUNT, True),
    FeatureSpec(9, "est_body_cycles", "The estimated cycle length of loop body.", FeatureKind.COUNT, True),
    FeatureSpec(10, "language", "The language (C or Fortran).", FeatureKind.CATEGORICAL, True),
    FeatureSpec(11, "num_parallel_computations", "The number of parallel computations in loop.", FeatureKind.COUNT, True),
    FeatureSpec(12, "max_dependence_height", "The max. dependence height of computations.", FeatureKind.COUNT, True),
    FeatureSpec(13, "max_memory_dep_height", "The max. height of memory dependencies of computations.", FeatureKind.COUNT, True),
    FeatureSpec(14, "max_control_dep_height", "The max. height of control dependencies of computations.", FeatureKind.COUNT, True),
    FeatureSpec(15, "avg_dependence_height", "The average dependence height of computations.", FeatureKind.CONTINUOUS, True),
    FeatureSpec(16, "num_indirect_refs", "The number of indirect references in loop body.", FeatureKind.COUNT, True),
    FeatureSpec(17, "min_mem_carried_dep", "The min. memory-to-memory loop-carried dependence (-1 if none).", FeatureKind.COUNT, True),
    FeatureSpec(18, "num_mem_mem_deps", "The number of memory-to-memory dependencies.", FeatureKind.COUNT, True),
    FeatureSpec(19, "tripcount", "The tripcount of the loop (-1 if unknown).", FeatureKind.COUNT, True),
    FeatureSpec(20, "num_uses", "The number of uses in the loop.", FeatureKind.COUNT, True),
    FeatureSpec(21, "num_defs", "The number of defs. in the loop.", FeatureKind.COUNT, True),
    FeatureSpec(22, "num_int_ops", "The number of integer arithmetic ops. in loop body.", FeatureKind.COUNT),
    FeatureSpec(23, "num_muldiv_ops", "The number of multiply/divide ops. in loop body.", FeatureKind.COUNT),
    FeatureSpec(24, "num_loads", "The number of loads in loop body.", FeatureKind.COUNT),
    FeatureSpec(25, "num_stores", "The number of stores in loop body.", FeatureKind.COUNT),
    FeatureSpec(26, "stride_one_frac", "Fraction of memory refs. with unit stride.", FeatureKind.CONTINUOUS),
    FeatureSpec(27, "num_distinct_arrays", "The number of distinct arrays referenced.", FeatureKind.COUNT),
    FeatureSpec(28, "num_carried_reg_deps", "The number of loop-carried scalar recurrences.", FeatureKind.COUNT),
    FeatureSpec(29, "live_range_size", "Peak simultaneous live values of the scheduled body.", FeatureKind.COUNT),
    FeatureSpec(30, "instruction_fan_in", "Instruction fan-in in DAG (mean in-degree).", FeatureKind.CONTINUOUS),
    FeatureSpec(31, "known_tripcount", "Whether the tripcount is a compile-time constant.", FeatureKind.BINARY),
    FeatureSpec(32, "body_bytes", "Code size of the loop body in bytes.", FeatureKind.COUNT),
    FeatureSpec(33, "mem_ratio", "Memory ops. as a fraction of all ops.", FeatureKind.CONTINUOUS),
    FeatureSpec(34, "fp_ratio", "Floating point ops. as a fraction of all ops.", FeatureKind.CONTINUOUS),
    FeatureSpec(35, "res_mii", "Resource-constrained minimum initiation interval (fractional).", FeatureKind.CONTINUOUS),
    FeatureSpec(36, "rec_mii", "Recurrence-constrained minimum initiation interval.", FeatureKind.COUNT),
    FeatureSpec(37, "has_early_exit", "Whether the loop has a data-dependent early exit.", FeatureKind.BINARY),
)

#: Feature names in index order.
FEATURE_NAMES: tuple[str, ...] = tuple(spec.name for spec in FEATURES)

#: Total feature count — the paper collects the same number.
N_FEATURES = len(FEATURES)
assert N_FEATURES == 38, "the catalog must define exactly 38 features"


def feature_index(name: str) -> int:
    """Index of a feature by name."""
    try:
        return FEATURE_NAMES.index(name)
    except ValueError:
        raise KeyError(f"unknown feature {name!r}") from None


def by_name(name: str) -> FeatureSpec:
    """Spec of a feature by name."""
    return FEATURES[feature_index(name)]


def table1_subset() -> tuple[FeatureSpec, ...]:
    """The features shown in the paper's Table 1."""
    return tuple(spec for spec in FEATURES if spec.table1)
