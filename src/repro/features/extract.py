"""Feature extraction: loop IR -> 38-dimensional feature vector.

Everything is *static*: features come from the rolled loop body, its
dependence graph, and the compiler's machine model — never from measurement.
(The paper's features are what ORC's analyses can see at compile time; ours
are what this compiler's analyses can see.)
"""

from __future__ import annotations

import numpy as np

from repro.ir.dependence import DepKind, analyze_dependences
from repro.ir.loop import Loop
from repro.ir.types import DType, OpCategory
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.features.catalog import N_FEATURES
from repro.sched.list_scheduler import list_schedule
from repro.sched.modulo import recurrence_mii, resource_mii
from repro.sched.regpressure import max_live


def extract_features(loop: Loop, machine: MachineModel = ITANIUM2) -> np.ndarray:
    """The 38-feature vector of one loop (float64, catalog order)."""
    body = loop.body
    deps = analyze_dependences(loop)
    schedule = list_schedule(deps, machine)
    pressure = max_live(deps, schedule)
    heights = deps.dependence_heights()
    fan_in = deps.fan_in_degrees()

    n_ops = len(body)
    n_fp = sum(1 for inst in body if inst.op.is_fp)
    n_branches = sum(1 for inst in body if inst.op.is_branch)
    n_loads = sum(1 for inst in body if inst.op.is_load)
    n_stores = sum(1 for inst in body if inst.op.is_store)
    n_mem = n_loads + n_stores
    n_operands = sum(inst.n_operands for inst in body)
    n_implicit = sum(1 for inst in body if inst.implicit)
    predicates = {
        reg
        for inst in body
        for reg in list(inst.reg_dests()) + list(inst.reg_srcs())
        if reg.dtype is DType.PRED
    }
    n_int = sum(
        1
        for inst in body
        if inst.op.category in (OpCategory.INT_ALU, OpCategory.INT_MUL, OpCategory.INT_DIV)
    )
    n_muldiv = sum(
        1
        for inst in body
        if inst.op.category
        in (OpCategory.INT_MUL, OpCategory.INT_DIV, OpCategory.FP_MUL, OpCategory.FP_DIV)
    )

    mem_refs = [inst.mem for inst in body if inst.mem is not None]
    n_indirect = sum(1 for m in mem_refs if m.indirect)
    affine_refs = [m for m in mem_refs if not m.indirect]
    stride_one = sum(1 for m in affine_refs if abs(m.stride) == 1)
    stride_one_frac = stride_one / len(affine_refs) if affine_refs else 0.0

    mem_dep_edges = [e for e in deps.edges if e.kind.is_memory]
    carried_mem = [e.distance for e in mem_dep_edges if e.distance >= 1]
    min_carried_mem = min(carried_mem) if carried_mem else -1

    n_uses = sum(1 for inst in body for _ in inst.reg_srcs())
    n_defs = sum(1 for inst in body for _ in inst.reg_dests())

    trip = loop.trip
    tripcount = trip.compile_time if trip.known else -1

    vector = np.empty(N_FEATURES, dtype=np.float64)
    vector[0] = loop.nest_level
    vector[1] = n_ops
    vector[2] = n_fp
    vector[3] = n_branches
    vector[4] = n_mem
    vector[5] = n_operands
    vector[6] = n_implicit
    vector[7] = len(predicates)
    vector[8] = deps.critical_path_length(machine)
    vector[9] = schedule.issue_length
    vector[10] = loop.language.value
    vector[11] = deps.n_components()
    vector[12] = max(heights) if heights else 0
    vector[13] = deps.memory_chain_height()
    vector[14] = deps.control_chain_height()
    vector[15] = float(np.mean(heights)) if heights else 0.0
    vector[16] = n_indirect
    vector[17] = min_carried_mem
    vector[18] = len(mem_dep_edges)
    vector[19] = tripcount
    vector[20] = n_uses
    vector[21] = n_defs
    vector[22] = n_int
    vector[23] = n_muldiv
    vector[24] = n_loads
    vector[25] = n_stores
    vector[26] = stride_one_frac
    vector[27] = len(loop.referenced_arrays())
    vector[28] = len(loop.carried_regs())
    vector[29] = pressure.total
    vector[30] = float(np.mean(fan_in)) if fan_in else 0.0
    vector[31] = 1.0 if trip.known else 0.0
    vector[32] = machine.code_bytes(n_ops)
    vector[33] = n_mem / n_ops if n_ops else 0.0
    vector[34] = n_fp / n_ops if n_ops else 0.0
    vector[35] = resource_mii(deps, machine)
    vector[36] = recurrence_mii(deps, machine)
    vector[37] = 1.0 if loop.has_early_exit else 0.0
    return vector


def extract_matrix(loops, machine: MachineModel = ITANIUM2) -> np.ndarray:
    """Feature matrix (``n_loops x 38``) for a sequence of loops."""
    loops = list(loops)
    matrix = np.empty((len(loops), N_FEATURES), dtype=np.float64)
    for row, loop in enumerate(loops):
        matrix[row] = extract_features(loop, machine)
    return matrix
