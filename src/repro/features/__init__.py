"""Static loop features: the catalog, the extractor, and normalisation."""

from repro.features.catalog import (
    FEATURE_NAMES,
    FEATURES,
    FeatureKind,
    FeatureSpec,
    N_FEATURES,
    by_name,
    feature_index,
    table1_subset,
)
from repro.features.extract import extract_features, extract_matrix
from repro.features.normalize import (
    Normalizer,
    fit_minmax,
    fit_normalizer,
    fit_zscore,
)

__all__ = [
    "FEATURE_NAMES",
    "FEATURES",
    "FeatureKind",
    "FeatureSpec",
    "N_FEATURES",
    "Normalizer",
    "by_name",
    "extract_features",
    "extract_matrix",
    "feature_index",
    "fit_minmax",
    "fit_normalizer",
    "fit_zscore",
    "table1_subset",
]
