"""Feature normalisation.

The paper normalises feature vectors "to weigh all features equally;
otherwise, features with large values such as loop tripcount would grossly
outweigh small-valued features in the distance calculation" (Section 5.1).
We provide the two standard choices — min-max scaling to ``[0, 1]`` (the
default, which makes the paper's radius of 0.3 meaningful) and
z-score standardisation — as fitted transformers so that train-time
statistics are applied unchanged to novel loops at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Normalizer:
    """A fitted affine feature transform ``(x - shift) / scale``."""

    shift: np.ndarray
    scale: np.ndarray
    method: str

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the fitted transform to a matrix or a single vector."""
        X = np.asarray(X, dtype=np.float64)
        return (X - self.shift) / self.scale

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo the transform (used by visualisation helpers)."""
        return np.asarray(X, dtype=np.float64) * self.scale + self.shift

    # ------------------------------------------------------------------
    # Persistence (consumed by repro.registry model artifacts).
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """The fitted statistics as plain arrays/strings, for artifacts."""
        return {
            "shift": np.asarray(self.shift, dtype=np.float64),
            "scale": np.asarray(self.scale, dtype=np.float64),
            "method": self.method,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Normalizer":
        """Rebuild a fitted normaliser exactly (bit-identical transforms)."""
        return cls(
            shift=np.asarray(state["shift"], dtype=np.float64),
            scale=np.asarray(state["scale"], dtype=np.float64),
            method=str(state["method"]),
        )


def fit_minmax(X: np.ndarray) -> Normalizer:
    """Min-max scaling to ``[0, 1]``; constant features map to 0."""
    X = np.asarray(X, dtype=np.float64)
    lo = X.min(axis=0)
    hi = X.max(axis=0)
    span = hi - lo
    span[span == 0.0] = 1.0
    return Normalizer(shift=lo, scale=span, method="minmax")


def fit_zscore(X: np.ndarray) -> Normalizer:
    """Zero-mean unit-variance standardisation; constant features map to 0."""
    X = np.asarray(X, dtype=np.float64)
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std[std == 0.0] = 1.0
    return Normalizer(shift=mean, scale=std, method="zscore")


def fit_normalizer(X: np.ndarray, method: str = "minmax") -> Normalizer:
    """Fit a normaliser by name (``"minmax"`` or ``"zscore"``)."""
    if method == "minmax":
        return fit_minmax(X)
    if method == "zscore":
        return fit_zscore(X)
    raise ValueError(f"unknown normalisation method {method!r}")
