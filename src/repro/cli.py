"""Command-line interface: ``repro-unroll`` / ``python -m repro``.

Subcommands map one-to-one onto the paper's artefacts:

* ``build-data`` — run the measurement + labelling pipeline (cached).
* ``histogram`` — Figure 3 (optimal-unroll-factor histogram).
* ``table2`` — prediction-rank table for NN, SVM, and ORC.
* ``speedups`` — Figures 4/5 (per-benchmark improvement over ORC).
* ``features`` — Tables 3/4 (mutual information + greedy selection).
* ``predict`` — predict a factor for a named library kernel (the
  compile-time deployment path).  With ``--model`` it loads a trained
  artifact instead of retraining.
* ``train`` — train both classifiers once and write a versioned model
  artifact (the train-once half of train-once/serve-many).
* ``serve`` — load an artifact (falling back to the registry's last good
  model if it is corrupt) and answer JSON-lines prediction requests from
  stdin through a bounded, deadline-aware gateway (the serve-many half).
* ``measure`` — fault-tolerant measurement run: per-unit retries and
  timeouts, quarantine instead of abort, and a checkpoint journal so
  ``--resume`` continues a killed run bit-identically.  ``--dedup``
  measures one representative per content-addressed equivalence class and
  fans results back out, bit-identical to a full run.
* ``lifecycle`` — the closed loop over a serving fleet: replay the
  request log for drift (confidence, vote entropy, feature shift vs the
  training fingerprint), measure flagged loops through the resilient
  queue, retrain, canary-gate against the incumbent, atomically promote
  (two-phase, journal-backed — a crash leaves old or new bytes, never
  torn), and shadow-check with automatic rollback.  ``status`` inspects
  the registry slots and any in-progress journal; the serve daemon's
  ``--lifecycle-poll-s`` runs the same loop in-process.
* ``export`` — dump the raw loop data in the release format.
* ``cache`` — inspect or prune the measurement cache (stats/gc/clear).
* ``bench`` — time the measure/dedup/label/select/serve stages against the
  reference implementations and write a ``BENCH_<date>.json`` perf report.

Measurement fans out over ``--jobs`` worker processes (or ``$REPRO_JOBS``);
results are bit-identical to a serial run at any parallelism.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=20050320, help="suite root seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="fraction of the full per-benchmark loop counts to generate",
    )
    parser.add_argument("--swp", action="store_true", help="enable software pipelining")
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="measurement worker processes (default: $REPRO_JOBS, else serial)",
    )


def _artifacts(args, rollup=None):
    from repro.pipeline import build_artifacts

    return build_artifacts(
        suite_seed=args.seed,
        loops_scale=args.scale,
        swp=args.swp,
        jobs=args.jobs,
        rollup=rollup,
    )


def cmd_build_data(args) -> int:
    """Measure + label the suite (cache-aware) and report the filters."""
    from repro.instrument import MeasurementRollup
    from repro.pipeline import stats_from_table

    rollup = MeasurementRollup()
    artifacts = _artifacts(args, rollup=rollup)
    stats = stats_from_table(artifacts.table, artifacts.config)
    print(stats.summary())
    print(f"dataset rows: {len(artifacts.dataset)} (swp={artifacts.dataset.swp})")
    if rollup.n_units:
        print(rollup.summary())
    return 0


def cmd_cache(args) -> int:
    """Inspect or prune the measurement cache (stats / gc / clear)."""
    from repro.pipeline import CacheStore

    store = CacheStore(args.cache_dir)
    if args.action == "stats":
        print(store.stats().summary())
    elif args.action == "gc":
        removed = store.gc()
        print(f"removed {len(removed)} unreadable file(s) from {store.root}")
    else:  # clear
        count = store.clear()
        print(f"removed {count} file(s) from {store.root}")
    return 0


def cmd_histogram(args) -> int:
    """Print the Figure 3 optimal-unroll-factor histogram."""
    artifacts = _artifacts(args)
    histogram = artifacts.dataset.label_histogram()
    print("Optimal unroll factor histogram"
          f" ({'SWP' if args.swp else 'no SWP'}, {len(artifacts.dataset)} loops):")
    for factor, fraction in enumerate(histogram, start=1):
        bar = "#" * int(round(fraction * 60))
        print(f"  u={factor}  {fraction:6.1%}  {bar}")
    return 0


def cmd_table2(args) -> int:
    """Print the Table 2 prediction-rank table for NN, SVM, and ORC."""
    from repro.heuristics import ORCHeuristic
    from repro.ml import loocv_nn, loocv_svm, rank_distribution, selected_feature_union

    artifacts = _artifacts(args)
    dataset = artifacts.dataset
    loops = {l.name: l for b in artifacts.suite.benchmarks for l in b.loops}
    orc = ORCHeuristic(swp=args.swp)
    indices = selected_feature_union(dataset.X, dataset.labels, subsample=500)

    predictions = {
        "NN": loocv_nn(dataset, indices),
        "SVM": loocv_svm(dataset, indices),
        "ORC": np.array([orc.predict_loop(loops[n]) for n in dataset.loop_names]),
    }
    distributions = {
        name: rank_distribution(dataset, preds) for name, preds in predictions.items()
    }
    print(f"{'Prediction Correctness':28s} {'NN':>6s} {'SVM':>6s} {'ORC':>6s} {'Cost':>7s}")
    row_names = [
        "Optimal unroll factor", "Second-best unroll factor",
        "Third-best unroll factor", "Fourth-best unroll factor",
        "Fifth-best unroll factor", "Sixth-best unroll factor",
        "Seventh-best unroll factor", "Worst unroll factor",
    ]
    for rank, row_name in enumerate(row_names, start=1):
        nn_f, cost = distributions["NN"].row(rank)
        svm_f, _ = distributions["SVM"].row(rank)
        orc_f, _ = distributions["ORC"].row(rank)
        print(f"{row_name:28s} {nn_f:6.2f} {svm_f:6.2f} {orc_f:6.2f} {cost:6.2f}x")
    return 0


def cmd_speedups(args) -> int:
    """Print the Figure 4/5 per-benchmark improvements over ORC."""
    from repro.ml import selected_feature_union
    from repro.pipeline import EvaluationConfig, evaluate_speedups

    artifacts = _artifacts(args)
    dataset = artifacts.dataset
    indices = selected_feature_union(dataset.X, dataset.labels, subsample=500)
    config = EvaluationConfig(swp=args.swp, feature_indices=indices)
    report = evaluate_speedups(artifacts.suite, artifacts.table, dataset, config)
    print(f"{'Benchmark':16s} {'NN':>8s} {'SVM':>8s} {'Oracle':>8s}")
    for result in report.results:
        print(
            f"{result.benchmark:16s}"
            f" {result.improvements['nn']:8.2%}"
            f" {result.improvements['svm']:8.2%}"
            f" {result.improvements['oracle']:8.2%}"
        )
    for name in ("nn", "svm", "oracle"):
        print(
            f"mean {name:7s}: {report.mean_improvement(name):6.2%} overall,"
            f" {report.mean_improvement(name, fp_only=True):6.2%} SPECfp,"
            f" beats ORC on {report.wins(name)}/{len(report.results)}"
        )
    return 0


def cmd_features(args) -> int:
    """Print the Table 3 (MIS) and Table 4 (greedy) feature rankings."""
    from repro.ml import greedy_forward_selection, rank_by_mutual_information

    artifacts = _artifacts(args)
    dataset = artifacts.dataset
    print("Top features by mutual information score (Table 3):")
    for rank, scored in enumerate(rank_by_mutual_information(dataset.X, dataset.labels)[:5], 1):
        print(f"  {rank}. {scored.name:28s} MIS={scored.score:.3f}")
    for classifier in ("nn", "svm"):
        print(f"Greedy forward selection for {classifier.upper()} (Table 4):")
        chosen = greedy_forward_selection(
            dataset.X, dataset.labels, classifier, n_features=5, subsample=500
        )
        for rank, scored in enumerate(chosen, 1):
            print(f"  {rank}. {scored.name:28s} error={scored.score:.2f}")
    return 0


def _trained_heuristic(args):
    """The prediction heuristic: loaded from ``--model`` when given, else
    trained in-process on the (cached) dataset.  Returns ``None`` after
    printing a diagnostic when the artifact cannot be served."""
    if getattr(args, "model", None):
        artifact = _load_model(args.model)
        return None if artifact is None else artifact.heuristic(args.classifier)
    from repro.heuristics import (
        train_ensemble_heuristic,
        train_forest_heuristic,
        train_mlp_heuristic,
        train_nn_heuristic,
        train_svm_heuristic,
    )
    from repro.ml import selected_feature_union

    artifacts = _artifacts(args)
    dataset = artifacts.dataset
    indices = selected_feature_union(dataset.X, dataset.labels, subsample=500)
    trainers = {
        "nn": train_nn_heuristic,
        "svm": train_svm_heuristic,
        "mlp": train_mlp_heuristic,
        "forest": train_forest_heuristic,
    }
    if args.classifier == "ensemble":
        members = {
            name: trainer(dataset, feature_indices=indices)
            for name, trainer in trainers.items()
        }
        return train_ensemble_heuristic(dataset, members, feature_indices=indices)
    return trainers[args.classifier](dataset, feature_indices=indices)


def _load_model(path):
    """Load a model artifact, quarantining corrupt files; prints the
    failure and returns ``None`` when the artifact cannot be served."""
    from repro.registry import (
        CorruptArtifactError,
        StaleArtifactError,
        load_or_quarantine,
    )

    try:
        return load_or_quarantine(path)
    except FileNotFoundError:
        print(f"cannot load model {path}: no such file")
    except StaleArtifactError as error:
        print(f"stale model artifact: {error}")
    except CorruptArtifactError as error:
        print(f"corrupt model artifact (quarantined): {error}")
    return None


def cmd_train(args) -> int:
    """Train both classifiers on the (cached) dataset and write a
    versioned model artifact."""
    from repro.ml import selected_feature_union
    from repro.registry import train_model_artifact

    artifacts = _artifacts(args)
    dataset = artifacts.dataset
    indices = selected_feature_union(dataset.X, dataset.labels, subsample=500)
    artifact = train_model_artifact(
        dataset,
        feature_indices=indices,
        provenance={
            "suite_seed": args.seed,
            "loops_scale": args.scale,
            "swp": args.swp,
        },
    )
    path = artifact.save(args.out)
    print(
        f"trained NN + SVM + MLP + forest + calibrated ensemble on "
        f"{len(dataset)} loops "
        f"({len(artifact.feature_names)} selected features: "
        f"{', '.join(artifact.feature_names)})"
    )
    print(f"wrote model artifact {path} ({path.stat().st_size / 1024:.0f} KiB)")
    return 0


def cmd_predict(args) -> int:
    """Advise a factor for a library kernel, from a trained artifact
    (``--model``) or an in-process train on the cached dataset."""
    from repro.simulate import CostModel
    from repro.workloads.kernels import KERNELS

    if args.kernel not in KERNELS:
        print(f"unknown kernel {args.kernel!r}; choose from: {', '.join(sorted(KERNELS))}")
        return 2
    loop = KERNELS[args.kernel]()
    heuristic = _trained_heuristic(args)
    if heuristic is None:
        return 2
    if args.classifier == "ensemble":
        factor, confidence = heuristic.predict_loop_detail(loop)
        print(
            f"ENSEMBLE predicts unroll factor {factor} for kernel "
            f"{args.kernel!r} (confidence {confidence:.1%})"
        )
    else:
        factor = heuristic.predict_loop(loop)
        print(
            f"{args.classifier.upper()} predicts unroll factor {factor} "
            f"for kernel {args.kernel!r}"
        )
    sweep = CostModel(swp=args.swp).sweep(loop)
    best = min(sweep, key=lambda u: sweep[u].total_cycles)
    print(f"simulator-optimal factor: {best}")
    for factor_i in range(1, 9):
        marker = " <- predicted" if factor_i == factor else ""
        print(f"  u={factor_i}: {sweep[factor_i].total_cycles:12.0f} cycles{marker}")
    return 0


def cmd_predict_file(args) -> int:
    """Parse loops from a loop-language file and advise factors for them."""
    from repro.frontend import LexError, ParseError, parse_program
    from repro.simulate import CostModel

    try:
        with open(args.file) as handle:
            parsed = parse_program(handle.read())
    except (OSError, LexError, ParseError) as error:
        print(f"cannot read {args.file}: {error}")
        return 2

    heuristic = _trained_heuristic(args)
    if heuristic is None:
        return 2
    model = CostModel(swp=args.swp)
    advised = 0
    for entry in parsed:
        loop = entry.loop
        try:
            factor = heuristic.predict_loop(loop)
            sweep = model.sweep(loop)
        except ValueError as error:
            print(f"{loop.name}: not unrollable ({error})")
            continue
        advised += 1
        best = min(sweep, key=lambda u: sweep[u].total_cycles)
        penalty = sweep[factor].total_cycles / sweep[best].total_cycles - 1.0
        print(
            f"{loop.name}: predicted u={factor}, simulator-optimal u={best} "
            f"(prediction within {penalty:.1%})"
        )
    if not advised:
        print(f"no unrollable loop in {args.file}")
        return 2
    return 0


def _parse_listen(listen: str) -> tuple[str, int]:
    """``HOST:PORT`` for ``serve --listen`` (``:0`` binds an ephemeral
    port; a bare ``:PORT`` listens on localhost; IPv6 hosts are bracketed,
    ``[::1]:PORT``)."""
    host, sep, port_text = listen.rpartition(":")
    if not sep:
        raise ValueError(f"--listen expects HOST:PORT, got {listen!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
        if not host:
            raise ValueError(f"--listen bracketed host is empty, got {listen!r}")
    elif ":" in host or "]" in host or "]" in port_text:
        # An unbracketed IPv6 literal splits ambiguously on ':' (is the
        # last group a port?); require the standard bracketed form.
        raise ValueError(
            f"--listen IPv6 hosts must be bracketed with a port, "
            f"e.g. [::1]:8080; got {listen!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"--listen port must be an integer, got {port_text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"--listen port out of range: {port}")
    return host or "127.0.0.1", port


def cmd_serve(args) -> int:
    """Answer JSON-lines prediction requests from stdin in one batch,
    behind the bounded, deadline-aware gateway — or, with ``--listen``,
    run the micro-batching TCP daemon until interrupted."""
    import json
    import time

    from repro.registry import ArtifactError, ArtifactStore
    from repro.serve import (
        DaemonConfig,
        GatewayConfig,
        PredictionEngine,
        ServeDaemon,
        ServeGateway,
        load_serving_artifact,
    )

    _install_fault_plan_arg(args)
    if args.listen:
        try:
            host, port = _parse_listen(args.listen)
        except ValueError as error:
            print(str(error))
            return 2
        config = DaemonConfig(
            host=host,
            port=port,
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            replicas=args.replicas,
            queue_limit=args.queue_limit,
            deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
            reload_poll_s=args.reload_poll_s,
            classifier=args.classifier,
            request_log=args.request_log,
            request_log_max_bytes=args.request_log_max_bytes,
        )
        workers = args.workers if args.workers is not None else 1
        if workers > 1:
            return _serve_cluster(args, host, port, workers, config)
        try:
            daemon = ServeDaemon(args.model, config, store=ArtifactStore())
        except FileNotFoundError:
            print(f"cannot load model {args.model}: no such file")
            return 2
        except ArtifactError as error:
            print(f"cannot serve: {error}")
            return 2
        if daemon.loaded.fallback:
            print(
                f"WARNING: serving last-good artifact {daemon.loaded.path.name} "
                f"instead of {args.model} ({'; '.join(daemon.loaded.failures)})",
                file=sys.stderr,
            )
        poller = None
        if args.lifecycle_poll_s:
            poller = _make_lifecycle_poller(args, daemon.loaded.artifact)
            if poller is None:
                return 2
            poller.start()
        try:
            daemon.run()
        finally:
            if poller is not None:
                poller.stop()
        print(daemon.gateway.counters.summary(), file=sys.stderr)
        return 0
    try:
        loaded = load_serving_artifact(args.model, store=ArtifactStore())
    except FileNotFoundError:
        print(f"cannot load model {args.model}: no such file")
        return 2
    except ArtifactError as error:
        print(f"cannot serve: {error}")
        return 2
    if loaded.fallback:
        print(
            f"WARNING: serving last-good artifact {loaded.path.name} instead of "
            f"{args.model} ({'; '.join(loaded.failures)})",
            file=sys.stderr,
        )
    engine = PredictionEngine(loaded.artifact, classifier=args.classifier)
    source = open(args.input) if args.input else sys.stdin
    try:
        lines = source.readlines()
    finally:
        if args.input:
            source.close()
    config = GatewayConfig(
        max_workers=args.workers if args.workers is not None else 4,
        queue_limit=args.queue_limit,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
    )
    start = time.perf_counter()
    with ServeGateway(engine, config) as gateway:
        responses = gateway.serve_lines(lines)
    wall = time.perf_counter() - start

    for response in responses:
        print(json.dumps(response, sort_keys=True))
    print(engine.rollup.latency_summary(wall), file=sys.stderr)
    print(gateway.counters.summary(), file=sys.stderr)
    errors = sum(1 for r in responses if not r["ok"])
    if errors:
        print(f"{errors}/{len(responses)} request(s) failed", file=sys.stderr)
    return 0


def _serve_cluster(args, host, port, workers, config) -> int:
    """The ``--listen --workers N`` path: supervise N shared-nothing
    daemon processes on one port (reuseport sharding, balancer fallback)."""
    from repro.registry import ArtifactError, ArtifactStore
    from repro.serve import (
        ClusterConfig,
        ServeCluster,
        WorkerStartupError,
        load_serving_artifact,
    )

    # Validate the artifact parent-side so a bad --model fails fast with
    # one diagnostic instead of N synchronized worker crash loops.
    try:
        loaded = load_serving_artifact(args.model, store=ArtifactStore())
    except FileNotFoundError:
        print(f"cannot load model {args.model}: no such file")
        return 2
    except ArtifactError as error:
        print(f"cannot serve: {error}")
        return 2
    if loaded.fallback:
        print(
            f"WARNING: serving last-good artifact {loaded.path.name} "
            f"instead of {args.model} ({'; '.join(loaded.failures)})",
            file=sys.stderr,
        )
    cluster = ServeCluster(
        args.model,
        ClusterConfig(workers=workers, host=host, port=port, daemon=config),
    )
    cluster.on_event = print
    poller = None
    if args.lifecycle_poll_s:
        poller = _make_lifecycle_poller(args, loaded.artifact)
        if poller is None:
            return 2
        poller.start()
    try:
        cluster.run()
    except WorkerStartupError as error:
        print(f"cannot serve: {error}")
        return 2
    finally:
        if poller is not None:
            poller.stop()
    print(f"cluster stopped: {cluster.restarts} worker restart(s)", file=sys.stderr)
    return 0


def _make_lifecycle_poller(args, artifact):
    """Build the daemon-adjacent lifecycle poller for ``--lifecycle-poll-s``.

    Retrain knobs come from the incumbent's provenance so the loop
    regenerates the same base dataset the served model was trained on.
    Returns ``None`` (with a diagnostic printed) when the serve flags
    cannot support a lifecycle."""
    from pathlib import Path

    from repro.lifecycle import LifecycleConfig, LifecyclePoller
    from repro.registry import ArtifactStore

    if not args.request_log:
        print(
            "--lifecycle-poll-s requires --request-log "
            "(the drift scanner replays it)"
        )
        return None
    model_path = Path(args.model)
    name = model_path.name
    prefix, suffix = ArtifactStore.PREFIX, ArtifactStore.SUFFIX
    if not (name.startswith(prefix) and name.endswith(suffix)):
        print(
            f"--lifecycle-poll-s requires a registry artifact path "
            f"({prefix}<name>{suffix}) so promotions land where the "
            f"hot-reload watcher looks; got {name}"
        )
        return None
    model = name[len(prefix) : -len(suffix)]
    provenance = getattr(artifact, "provenance", None) or {}
    seed = int(provenance.get("suite_seed", 20050320))
    scale = float(provenance.get("loops_scale", 1.0))
    swp = bool(provenance.get("swp", False))
    config = LifecycleConfig(
        log_path=args.request_log, model=model, swp=swp, seed=seed
    )
    return LifecyclePoller(
        config,
        ArtifactStore(model_path.parent),
        _lifecycle_train_fn(seed, scale, swp, None),
        interval_s=args.lifecycle_poll_s,
    )


def _install_fault_plan_arg(args) -> None:
    """Activate ``--fault-plan`` (a chaos-testing hook; no-op without it)."""
    if getattr(args, "fault_plan", None):
        from repro.resilience import install_fault_plan

        install_fault_plan(args.fault_plan)


def cmd_measure(args) -> int:
    """Fault-tolerant measurement run: retries, quarantine, checkpoint
    journal, and ``--resume`` to continue a killed run bit-identically."""
    from repro.instrument import MeasurementRollup
    from repro.pipeline import CacheStore, LabelingConfig, config_key, measure_suite
    from repro.resilience import (
        AbortRun,
        CheckpointJournal,
        JournalError,
        ResilienceConfig,
        RetryPolicy,
    )
    from repro.workloads.generator import generate_suite

    _install_fault_plan_arg(args)
    config = LabelingConfig(seed=args.seed, swp=args.swp, dedup=args.dedup)
    suite = generate_suite(seed=args.seed, loops_scale=args.scale)
    key = config_key(args.seed, args.scale, config)
    store = CacheStore(args.cache_dir)

    cached = store.load(key)
    if cached is not None and cached.swp == config.swp and len(cached) == suite.n_loops:
        print(f"measurement table {key} already cached at {store.path_for(key)}")
        return 0

    # A dedup run's journal holds class-key units, not (benchmark, factor)
    # units, so it gets its own run key and default path — the cache key is
    # shared (the tables are bit-identical) but the journals never mix.
    run_key = f"{key}-dedup" if args.dedup else key
    journal_path = args.journal or store.root / f"journal_{run_key}.jsonl"
    journal = CheckpointJournal(journal_path, run_key=run_key)
    if args.resume:
        try:
            replayed = journal.load()
        except JournalError as error:
            print(f"cannot resume: {error}")
            return 2
        if replayed:
            print(f"resuming from {journal_path} ({replayed} unit(s) committed)")
    else:
        journal.discard()  # a stale journal must not leak into a fresh run

    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=args.max_attempts),
        unit_timeout_s=args.unit_timeout,
    )
    rollup = MeasurementRollup()
    try:
        table = measure_suite(
            suite,
            config,
            jobs=args.jobs,
            rollup=rollup,
            resilience=resilience,
            journal=journal,
        )
    except AbortRun as error:
        print(f"run aborted: {error}; continue with 'repro-unroll measure --resume'")
        return 3
    finally:
        journal.close()

    print(rollup.summary())
    quarantined = rollup.quarantined_units()
    if quarantined:
        print(
            f"NOT cached: {len(quarantined)} unit(s) quarantined "
            f"({', '.join(quarantined)}); table would have holes"
        )
        return 1
    path = store.store(key, table)
    journal.discard()  # the run is durable in the cache now
    print(f"measured {len(table)} loops; wrote table {key} to {path}")
    return 0


def _lifecycle_train_fn(seed, scale, swp, jobs):
    """The default retrain stage: rebuild the (cached) pipeline dataset,
    augment it with the lifecycle's measured loops, and train a full
    artifact.  Deterministic for fixed inputs — resume relies on it."""

    def train_fn(measured_rows):
        from repro.lifecycle import augment_dataset
        from repro.ml import selected_feature_union
        from repro.pipeline import build_artifacts
        from repro.registry import train_model_artifact

        artifacts = build_artifacts(
            suite_seed=seed, loops_scale=scale, swp=swp, jobs=jobs
        )
        dataset = augment_dataset(artifacts.dataset, measured_rows)
        indices = selected_feature_union(dataset.X, dataset.labels, subsample=500)
        return train_model_artifact(
            dataset,
            feature_indices=indices,
            provenance={
                "suite_seed": seed,
                "loops_scale": scale,
                "swp": swp,
                "lifecycle": True,
                "n_measured": len(measured_rows),
            },
        )

    return train_fn


def cmd_lifecycle(args) -> int:
    """The closed loop: drift scan over the request log, resilient
    measurement of flagged loops, retrain, canary gate, atomic promotion,
    and the post-promotion shadow check — all checkpointed so ``--resume``
    continues a killed run bit-identically."""
    import json
    from pathlib import Path

    from repro.lifecycle import (
        CanaryConfig,
        DriftConfig,
        LifecycleConfig,
        default_journal_path,
        lifecycle_status,
        run_lifecycle,
    )
    from repro.registry import ArtifactError, ArtifactStore
    from repro.resilience import (
        AbortRun,
        JournalError,
        ResilienceConfig,
        RetryPolicy,
    )

    store = ArtifactStore(args.artifact_dir)
    if args.action == "status":
        print(
            json.dumps(
                lifecycle_status(store, args.model, args.journal),
                indent=2,
                sort_keys=True,
            )
        )
        return 0

    if not args.log:
        print("lifecycle run requires --log (the served-request log to replay)")
        return 2
    _install_fault_plan_arg(args)
    config = LifecycleConfig(
        log_path=args.log,
        model=args.model,
        journal_path=args.journal,
        drift=DriftConfig(window=args.window),
        canary=CanaryConfig(min_family_agreement=args.min_family_agreement),
        force=args.force,
        skip_canary=args.skip_canary,
        jobs=args.jobs or 1,
        swp=args.swp,
        seed=args.seed,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=args.max_attempts)
        ),
    )
    journal_path = Path(
        args.journal or default_journal_path(store, args.model)
    )
    if args.resume and journal_path.exists():
        print(f"resuming from {journal_path}")
    train_fn = _lifecycle_train_fn(args.seed, args.scale, args.swp, args.jobs)
    try:
        result = run_lifecycle(config, store, train_fn, resume=args.resume)
    except JournalError as error:
        print(f"cannot resume: {error}")
        return 2
    except ArtifactError as error:
        print(f"lifecycle failed: {error}")
        return 2
    except AbortRun as error:
        print(
            f"run aborted: {error}; continue with "
            f"'repro-unroll lifecycle run --resume'"
        )
        return 3

    drift = result.drift
    drifted = sum(1 for window in drift.windows if window.drifted)
    print(
        f"drift: {drifted}/{len(drift.windows)} window(s) drifted "
        f"({drift.n_replayable} replayable record(s), "
        f"{len(drift.flagged)} flagged)"
    )
    if result.measured:
        print(f"measured {len(result.measured)} flagged loop(s)")
    if result.canary is not None:
        verdict = "accepted" if result.canary.accepted else "rejected"
        detail = (
            f"candidate {result.canary.candidate_accuracy:.3f} vs "
            f"incumbent {result.canary.incumbent_accuracy:.3f}"
            if result.canary.candidate_accuracy is not None
            else f"min family agreement {min(result.canary.family_agreement.values()):.3f}"
            if result.canary.family_agreement
            else "empty replay"
        )
        print(f"canary: {verdict} ({detail})")
    if result.promotion is not None:
        print(
            f"promoted {result.promotion.candidate_checksum[:12]} "
            f"over {str(result.promotion.previous_checksum)[:12]} "
            f"at {result.promotion.live_path}"
        )
    if result.rollback is not None:
        print(
            f"rolled back to last-good {result.rollback['restored_checksum'][:12]} "
            f"({result.rollback['reason']}); rejected bytes kept at "
            f"{result.rollback['rejected']}"
        )
    print(f"lifecycle outcome: {result.outcome}")
    return 0


def cmd_suite_stats(args) -> int:
    """Describe the workload population: suites, languages, loop shapes."""
    import numpy as np

    from repro.features import feature_index
    from repro.workloads.generator import generate_suite

    suite = generate_suite(seed=args.seed, loops_scale=args.scale)
    print(f"{suite.name}: {len(suite.benchmarks)} benchmarks, {suite.n_loops} loops")

    by_suite: dict[str, int] = {}
    by_lang: dict[str, int] = {}
    for bench in suite.benchmarks:
        by_suite[bench.suite] = by_suite.get(bench.suite, 0) + bench.n_loops
        by_lang[bench.language.name] = by_lang.get(bench.language.name, 0) + bench.n_loops
    print("loops per suite:    " + ", ".join(f"{k}={v}" for k, v in sorted(by_suite.items())))
    print("loops per language: " + ", ".join(f"{k}={v}" for k, v in sorted(by_lang.items())))

    loops = suite.all_loops()
    sizes = np.array([l.size for l in loops])
    trips = np.array([l.trip.runtime for l in loops])
    print(f"body size:  median {np.median(sizes):.0f} ops, p90 {np.percentile(sizes, 90):.0f}, max {sizes.max()}")
    print(f"trip count: median {np.median(trips):.0f}, p90 {np.percentile(trips, 90):.0f}, max {trips.max()}")
    print(f"known trip counts:  {sum(l.trip.known for l in loops) / len(loops):.0%}")
    print(f"while-style loops:  {sum(not l.trip.counted for l in loops) / len(loops):.0%}")
    print(f"early exits:        {sum(l.has_early_exit for l in loops) / len(loops):.0%}")
    indirect = sum(
        any(i.mem is not None and i.mem.indirect for i in l.body) for l in loops
    )
    print(f"indirect references: {indirect / len(loops):.0%}")
    recurrences = sum(bool(l.carried_regs()) for l in loops)
    print(f"scalar recurrences:  {recurrences / len(loops):.0%}")
    return 0


def cmd_bench(args) -> int:
    """Time measure/label/select against the reference implementations and
    write the BENCH_<date>.json perf report."""
    from repro.perf import BenchConfig, run_bench, write_report

    import dataclasses

    config = BenchConfig.quick_config() if args.quick else BenchConfig()
    if args.scale is not None:
        config = dataclasses.replace(config, loops_scale=args.scale)
    config = dataclasses.replace(config, suite_seed=args.seed)
    report = run_bench(config)
    print(report.summary())
    dedup = report.stage("dedup").detail
    if not dedup.get("picks_match", True):
        print("WARNING: dedup measurement tables diverge from dedup-off")
    select = report.stage("select").detail
    if not select.get("picks_match", True):
        print("WARNING: fast and reference feature selection disagree")
    serve = report.stage("serve").detail
    if not serve.get("predictions_match", True):
        print("WARNING: served predictions disagree with retrain-per-request")
    daemon = report.stage("daemon").detail
    if not daemon.get("predictions_match", True):
        print("WARNING: batched daemon predictions disagree with per-request")
    if daemon.get("reload", {}).get("responses_dropped"):
        print("WARNING: hot reload dropped responses under live traffic")
    families = report.stage("families").detail
    if not families.get("predictions_match", True):
        print("WARNING: family predictions diverge (scalar/batched, "
              "restricted-ensemble, or save/load round trip)")
    multiproc = report.stage("multiproc").detail
    if not multiproc.get("predictions_match", True):
        print("WARNING: multi-process predictions diverge across worker counts")
    if not multiproc.get("balanced", True):
        print("WARNING: multi-process healthz counters did not balance")
    path = write_report(report, args.out)
    print(f"wrote {path}")
    return 0


def cmd_export(args) -> int:
    """Dump the labelled dataset in the raw-loop-data release format."""
    from repro.instrument import LoopRecord, write_records

    artifacts = _artifacts(args)
    dataset = artifacts.dataset
    records = (
        LoopRecord(
            loop_name=str(dataset.loop_names[i]),
            benchmark=str(dataset.benchmarks[i]),
            suite=str(dataset.suites[i]),
            language=str(dataset.languages[i]),
            features=tuple(float(v) for v in dataset.X[i]),
            median_cycles=tuple(float(v) for v in dataset.cycles[i]),
        )
        for i in range(len(dataset))
    )
    count = write_records(records, args.output)
    print(f"wrote {count} loop records to {args.output}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-unroll",
        description="Reproduction of 'Predicting Unroll Factors Using Supervised Classification'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, handler, extra in (
        ("build-data", cmd_build_data, None),
        ("histogram", cmd_histogram, None),
        ("table2", cmd_table2, None),
        ("speedups", cmd_speedups, None),
        ("features", cmd_features, None),
        ("train", cmd_train, "train"),
        ("predict", cmd_predict, "predict"),
        ("predict-file", cmd_predict_file, "predict-file"),
        ("suite-stats", cmd_suite_stats, None),
        ("export", cmd_export, "export"),
    ):
        p = sub.add_parser(name)
        _add_common(p)
        p.set_defaults(handler=handler)
        if extra == "train":
            p.add_argument(
                "--out",
                required=True,
                help="output path for the model artifact (e.g. model.rma)",
            )
        elif extra == "predict":
            p.add_argument("kernel", help="library kernel name (e.g. daxpy)")
            p.add_argument("--classifier", choices=("nn", "svm", "mlp", "forest", "ensemble"), default="svm")
            p.add_argument(
                "--model",
                default=None,
                help="serve from a trained model artifact instead of retraining",
            )
        elif extra == "predict-file":
            p.add_argument("file", help="loop-language source file")
            p.add_argument("--classifier", choices=("nn", "svm", "mlp", "forest", "ensemble"), default="svm")
            p.add_argument(
                "--model",
                default=None,
                help="serve from a trained model artifact instead of retraining",
            )
        elif extra == "export":
            p.add_argument("output", help="output path for the raw loop data")

    serve_parser = sub.add_parser(
        "serve", help="answer JSON-lines prediction requests from stdin"
    )
    serve_parser.add_argument("--model", required=True, help="trained model artifact")
    serve_parser.add_argument("--classifier", choices=("nn", "svm", "mlp", "forest", "ensemble"), default="svm")
    serve_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="stdin mode: prediction threads for the batch (default: 4); "
        "--listen mode: independent daemon processes sharing the port via "
        "SO_REUSEPORT, or a round-robin balancer where unavailable "
        "(default: 1)",
    )
    serve_parser.add_argument(
        "--request-log",
        default=None,
        metavar="PATH",
        help="daemon mode: append served-request JSON-lines records "
        "(timestamp, features checksum, prediction, latency, worker id) "
        "to PATH, written off the hot path (default: no log)",
    )
    serve_parser.add_argument(
        "--request-log-max-bytes",
        type=_positive_int,
        default=None,
        metavar="N",
        help="rotate the request log to PATH.1, PATH.2, ... once the live "
        "file exceeds N bytes; rotation never tears a record "
        "(default: no rotation)",
    )
    serve_parser.add_argument(
        "--lifecycle-poll-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="daemon mode: run the closed lifecycle loop (drift scan over "
        "--request-log, retrain, canary, atomic promote) every SECONDS; "
        "requires --request-log and a registry-shaped --model path "
        "(default: off)",
    )
    serve_parser.add_argument(
        "--input",
        default=None,
        help="read requests from a file instead of stdin",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=_positive_int,
        default=64,
        help="max pending requests before 'overloaded' rejections (default: 64)",
    )
    serve_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline in milliseconds (default: none)",
    )
    serve_parser.add_argument(
        "--fault-plan",
        default=None,
        help="chaos-testing hook: inline JSON or a fault-plan file (never on by default)",
    )
    serve_parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="run as a TCP daemon with adaptive micro-batching instead of "
        "reading stdin (:0 binds an ephemeral port)",
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="daemon coalescing window: requests arriving within this many "
        "milliseconds are merged into one vectorized engine batch (default: 2)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=_positive_int,
        default=32,
        help="daemon cap on requests per coalesced batch (default: 32)",
    )
    serve_parser.add_argument(
        "--replicas",
        type=_positive_int,
        default=2,
        help="daemon engine replicas sharing the loaded artifact (default: 2)",
    )
    serve_parser.add_argument(
        "--reload-poll-s",
        type=float,
        default=None,
        help="daemon registry poll interval for hot artifact reload "
        "(default: no watcher; reload only via restart)",
    )
    serve_parser.set_defaults(handler=cmd_serve)

    measure_parser = sub.add_parser(
        "measure",
        help="fault-tolerant measurement run with checkpoint/resume",
    )
    _add_common(measure_parser)
    measure_parser.add_argument(
        "--resume",
        action="store_true",
        help="replay the checkpoint journal and execute only missing units",
    )
    measure_parser.add_argument(
        "--dedup",
        action="store_true",
        help="measure one representative per content-addressed equivalence "
        "class and fan results out (bit-identical to a full run)",
    )
    measure_parser.add_argument(
        "--journal",
        default=None,
        help="checkpoint journal path (default: journal_<key>.jsonl in the cache dir)",
    )
    measure_parser.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        help="per-unit timeout in seconds (default: none)",
    )
    measure_parser.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=3,
        help="attempts per unit before quarantine (default: 3)",
    )
    measure_parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR, else the repo-local .cache/)",
    )
    measure_parser.add_argument(
        "--fault-plan",
        default=None,
        help="chaos-testing hook: inline JSON or a fault-plan file (never on by default)",
    )
    measure_parser.set_defaults(handler=cmd_measure)

    lifecycle_parser = sub.add_parser(
        "lifecycle",
        help="closed-loop model maintenance: drift scan, retrain, canary "
        "gate, atomic promotion, shadow check with rollback",
    )
    lifecycle_parser.add_argument("action", choices=("run", "status"))
    _add_common(lifecycle_parser)
    lifecycle_parser.add_argument(
        "--log",
        default=None,
        metavar="PATH",
        help="served-request log to replay (rotated .N segments are "
        "walked oldest-first); required for 'run'",
    )
    lifecycle_parser.add_argument(
        "--model",
        default="base",
        help="registry artifact name to maintain (default: base)",
    )
    lifecycle_parser.add_argument(
        "--artifact-dir",
        default=None,
        help="registry root (default: $REPRO_ARTIFACT_DIR, else the "
        "repo-local .artifacts/)",
    )
    lifecycle_parser.add_argument(
        "--journal",
        default=None,
        help="lifecycle checkpoint journal path "
        "(default: lifecycle_<model>.journal.jsonl in the registry root)",
    )
    lifecycle_parser.add_argument(
        "--resume",
        action="store_true",
        help="replay the lifecycle journal and continue a killed run "
        "bit-identically",
    )
    lifecycle_parser.add_argument(
        "--force",
        action="store_true",
        help="run the retrain/canary/promote stages even when the drift "
        "scan is clean",
    )
    lifecycle_parser.add_argument(
        "--skip-canary",
        action="store_true",
        help="promote without the canary gate (shadow check still runs; "
        "for break-glass operations only)",
    )
    lifecycle_parser.add_argument(
        "--window",
        type=_positive_int,
        default=64,
        help="drift-scan window size in replayed records (default: 64)",
    )
    lifecycle_parser.add_argument(
        "--min-family-agreement",
        type=float,
        default=0.75,
        help="canary: minimum per-family agreement with the incumbent "
        "across the replay (default: 0.75)",
    )
    lifecycle_parser.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=3,
        help="measurement attempts per flagged loop before quarantine "
        "(default: 3)",
    )
    lifecycle_parser.add_argument(
        "--fault-plan",
        default=None,
        help="chaos-testing hook: inline JSON or a fault-plan file (never on by default)",
    )
    lifecycle_parser.set_defaults(handler=cmd_lifecycle)

    bench_parser = sub.add_parser(
        "bench", help="time the pipeline stages and write BENCH_<date>.json"
    )
    bench_parser.add_argument("--seed", type=int, default=20050320, help="suite root seed")
    bench_parser.add_argument(
        "--scale", type=float, default=None, help="override the bench suite scale"
    )
    bench_parser.add_argument(
        "--quick", action="store_true", help="CI-smoke sizing (small suite and subsample)"
    )
    bench_parser.add_argument(
        "--out", default=".", help="directory for the BENCH_<date>.json report"
    )
    bench_parser.set_defaults(handler=cmd_bench)

    cache_parser = sub.add_parser("cache", help="inspect or prune the measurement cache")
    cache_parser.add_argument("action", choices=("stats", "gc", "clear"))
    cache_parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR, else the repo-local .cache/)",
    )
    cache_parser.set_defaults(handler=cmd_cache)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
