"""Machine descriptions for the EPIC target family."""

from repro.machine.itanium2 import ITANIUM2, MACHINES, NARROW, SLOW_MEMORY, WIDE, machine_by_name
from repro.machine.model import (
    DEFAULT_LATENCIES,
    DCacheParams,
    ICacheParams,
    MachineModel,
)

__all__ = [
    "DEFAULT_LATENCIES",
    "DCacheParams",
    "ICacheParams",
    "ITANIUM2",
    "MACHINES",
    "MachineModel",
    "NARROW",
    "SLOW_MEMORY",
    "WIDE",
    "machine_by_name",
]
