"""EPIC machine descriptions.

A :class:`MachineModel` is everything the schedulers and the cycle simulator
need to know about the target: issue width, functional-unit inventory,
per-opcode latencies, register-file capacity, cache geometry, and the fixed
overheads of loop control.  The default description
(:data:`repro.machine.itanium2.ITANIUM2`) is modelled on the 1.3 GHz
Itanium 2 the paper targets; alternate descriptions exercise the
retargeting story (retrain the heuristic for a new machine by relabelling —
the paper's Section 4.5 claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Mapping

from repro.ir.instruction import Instruction
from repro.ir.types import FUKind, OpCategory, Opcode


@dataclass(frozen=True)
class ICacheParams:
    """Instruction-cache model parameters.

    ``loop_budget_bytes`` is the effective share of the I-cache a single hot
    loop can count on in a whole program (loops compete with each other and
    with straight-line code); code beyond the budget pays ``miss_penalty``
    per line per entry.
    """

    capacity_bytes: int = 16 * 1024
    line_bytes: int = 64
    loop_budget_bytes: int = 1536
    miss_penalty: int = 24


@dataclass(frozen=True)
class DCacheParams:
    """Data-cache model parameters (latencies in cycles)."""

    l1_bytes: int = 16 * 1024
    l2_bytes: int = 256 * 1024
    l3_bytes: int = 3 * 1024 * 1024
    line_bytes: int = 64
    l1_latency: int = 4
    l2_penalty: int = 7
    l3_penalty: int = 14
    memory_penalty: int = 120
    indirect_miss_rate: float = 0.4
    #: Sustained bandwidth (bytes/cycle) at each level.  Loops streaming
    #: from beyond L1 hit these floors no matter how much ILP unrolling
    #: exposes — misses only overlap up to the bandwidth/MSHR limit.
    l2_bandwidth: float = 16.0
    l3_bandwidth: float = 6.0
    memory_bandwidth: float = 1.5


@dataclass(frozen=True)
class MachineModel:
    """A statically scheduled (EPIC/VLIW-style) machine description."""

    name: str
    issue_width: int
    fu_counts: Mapping[FUKind, int]
    latencies: Mapping[Opcode, int]
    load_latency: int
    int_regs: int = 72
    fp_regs: int = 72
    rotating_regs: int = 96
    spill_cycles: float = 4.0
    spill_exponent: float = 1.7
    #: Fraction of a body's pre-spill period that spill traffic can add at
    #: most — the allocator spills cheapest-first, so even a badly
    #: over-unrolled loop degrades boundedly rather than collapsing.
    spill_cap_fraction: float = 1.0
    #: Fraction of latency-stall cycles hidden by overlap with adjacent
    #: iterations (scoreboarded in-order cores keep fetching across the
    #: backedge, and -O3 glue such as prefetching fills some gaps).  0
    #: models a strict lock-step EPIC pipeline; 1 models perfect overlap.
    overlap_efficiency: float = 0.5
    bytes_per_instr: float = 16.0 / 3.0
    backedge_cycles: int = 1
    precondition_cycles: int = 12
    #: Extra preconditioning cost when the unroll factor is not a power of
    #: two: the runtime trip split needs a real divide/modulo (emulated in
    #: software on this family) instead of a shift and mask.
    nonpow2_precondition_cycles: int = 48
    #: Extra cycles per body execution for non-power-of-two factors: copy
    #: addressing can no longer fold into shift-and-add (``shladd``) forms,
    #: so an extra induction-update group lands on the backedge path.
    nonpow2_body_cycles: int = 6
    exit_mispredict_cycles: int = 8
    counter_overhead_cycles: int = 9
    icache: ICacheParams = field(default_factory=ICacheParams)
    dcache: DCacheParams = field(default_factory=DCacheParams)

    def __post_init__(self) -> None:
        object.__setattr__(self, "fu_counts", MappingProxyType(dict(self.fu_counts)))
        object.__setattr__(self, "latencies", MappingProxyType(dict(self.latencies)))
        if self.issue_width < 1:
            raise ValueError("issue width must be positive")
        for kind in FUKind:
            if self.fu_counts.get(kind, 0) < 1:
                raise ValueError(f"machine needs at least one {kind.value} unit")

    # ------------------------------------------------------------------
    # Pickling (mappingproxy fields are not picklable by default; the
    # parallel measurement pipeline ships machine descriptions to worker
    # processes).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["fu_counts"] = dict(self.fu_counts)
        state["latencies"] = dict(self.latencies)
        state.pop("_sched_op_rows", None)  # scheduler cache; rebuilt on use
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "fu_counts", MappingProxyType(dict(self.fu_counts)))
        object.__setattr__(self, "latencies", MappingProxyType(dict(self.latencies)))

    # ------------------------------------------------------------------
    # Instruction properties.
    # ------------------------------------------------------------------

    def latency(self, inst: Instruction) -> int:
        """Result latency of an instruction on this machine."""
        return self.op_latency(inst.op)

    def op_latency(self, op: Opcode) -> int:
        """Result latency of an opcode (latency depends only on the op)."""
        if op is Opcode.LOAD:
            return self.load_latency
        if op is Opcode.LOAD_PAIR:
            return self.load_latency + 1
        return self.latencies[op]

    def fu_options(self, inst: Instruction) -> tuple[FUKind, ...]:
        """Functional units the instruction may issue on.

        Simple integer/compare/misc operations are "A-type": they issue on
        either an integer or a memory unit, as on Itanium.
        """
        return self.op_fu_options(inst.op)

    def op_fu_options(self, op: Opcode) -> tuple[FUKind, ...]:
        """Unit options of an opcode (options depend only on the op)."""
        kind = op.fu_kind
        if kind is FUKind.INT and op.category in (
            OpCategory.INT_ALU,
            OpCategory.COMPARE,
            OpCategory.MISC,
        ):
            return (FUKind.INT, FUKind.MEM)
        return (kind,)

    def is_pipelined(self, inst: Instruction) -> bool:
        return inst.op.info.pipelined

    def code_bytes(self, n_instructions: int) -> int:
        """Code footprint of ``n_instructions`` (EPIC bundles: 3 per 16 B)."""
        return int(round(n_instructions * self.bytes_per_instr))

    def regs_available(self, fp: bool, rotating: bool = False) -> int:
        """Registers the allocator can give one loop body."""
        if rotating:
            return self.rotating_regs
        return self.fp_regs if fp else self.int_regs

    # ------------------------------------------------------------------
    # Derived machines.
    # ------------------------------------------------------------------

    def with_load_latency(self, load_latency: int) -> "MachineModel":
        """A copy with a different effective load latency — how the
        simulator injects a loop's data-cache behaviour into scheduling."""
        if load_latency == self.load_latency:
            return self
        return replace(
            self,
            fu_counts=dict(self.fu_counts),
            latencies=dict(self.latencies),
            load_latency=load_latency,
        )

    @property
    def total_fu_slots(self) -> int:
        return sum(self.fu_counts.values())


#: Baseline per-opcode latencies shared by the stock machine descriptions.
DEFAULT_LATENCIES: dict[Opcode, int] = {
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.MUL: 3,
    Opcode.DIV: 18,
    Opcode.REM: 18,
    Opcode.SHL: 1,
    Opcode.SHR: 1,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.MOV: 1,
    Opcode.SXT: 1,
    Opcode.SELECT: 1,
    Opcode.FADD: 4,
    Opcode.FSUB: 4,
    Opcode.FMUL: 4,
    Opcode.FDIV: 24,
    Opcode.FMA: 4,
    Opcode.FNEG: 1,
    Opcode.CVT: 2,
    Opcode.CMP: 1,
    Opcode.FCMP: 1,
    Opcode.STORE: 1,
    Opcode.PREFETCH: 1,
    Opcode.BR_EXIT: 1,
    # LOAD / LOAD_PAIR latency comes from MachineModel.load_latency.
    Opcode.LOAD: 0,
    Opcode.LOAD_PAIR: 0,
}
