"""Stock machine descriptions.

:data:`ITANIUM2` approximates the paper's target (a 1.3 GHz Itanium 2):
six-issue EPIC with two memory ports, two integer units, two floating-point
units, three branch units, large rotating register files, and
floating-point loads served from L2 (hence the 6-cycle base load latency).

The variants exist for the retargeting example and the robustness tests:
relabel the training data on a different description and the learned
heuristic adapts with zero engineering effort — the paper's core pitch.
"""

from __future__ import annotations

from dataclasses import replace

from repro.ir.types import FUKind
from repro.machine.model import DEFAULT_LATENCIES, DCacheParams, ICacheParams, MachineModel

ITANIUM2 = MachineModel(
    name="itanium2-like",
    issue_width=6,
    fu_counts={FUKind.MEM: 2, FUKind.INT: 2, FUKind.FP: 2, FUKind.BR: 3},
    latencies=DEFAULT_LATENCIES,
    load_latency=6,
    int_regs=56,
    fp_regs=52,
    rotating_regs=72,
    spill_cycles=1.2,
    spill_exponent=1.8,
    icache=ICacheParams(loop_budget_bytes=1024),
)

#: A narrow in-order core: three-issue, single memory port, shallow caches.
#: Unrolling saturates its resources much sooner, so optimal factors skew low.
NARROW = MachineModel(
    name="narrow-3issue",
    issue_width=3,
    fu_counts={FUKind.MEM: 1, FUKind.INT: 1, FUKind.FP: 1, FUKind.BR: 1},
    latencies=DEFAULT_LATENCIES,
    load_latency=4,
    int_regs=32,
    fp_regs=32,
    rotating_regs=48,
    icache=ICacheParams(capacity_bytes=8 * 1024, loop_budget_bytes=1024),
    dcache=DCacheParams(l1_bytes=8 * 1024, l2_bytes=128 * 1024),
)

#: A wide research machine: eight-issue, four memory ports, huge register
#: files.  Bigger unroll factors keep paying off, so optimal factors skew
#: high — a useful contrast for the retargeting example.
WIDE = MachineModel(
    name="wide-8issue",
    issue_width=8,
    fu_counts={FUKind.MEM: 4, FUKind.INT: 4, FUKind.FP: 4, FUKind.BR: 3},
    latencies=DEFAULT_LATENCIES,
    load_latency=6,
    int_regs=128,
    fp_regs=128,
    rotating_regs=160,
)

#: The Itanium-like core with a punishing memory system — long-latency loads
#: reward the extra ILP unrolling exposes.
SLOW_MEMORY = replace(
    ITANIUM2,
    name="itanium2-slow-memory",
    fu_counts=dict(ITANIUM2.fu_counts),
    latencies=dict(ITANIUM2.latencies),
    load_latency=11,
    dcache=DCacheParams(l2_penalty=14, l3_penalty=30, memory_penalty=250),
)

#: All stock machines by name (CLI and examples look targets up here).
MACHINES = {
    machine.name: machine
    for machine in (ITANIUM2, NARROW, WIDE, SLOW_MEMORY)
}


def machine_by_name(name: str) -> MachineModel:
    """Look up a stock machine description by its name."""
    try:
        return MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}") from None
