"""Loop unrolling.

Replicates the loop body ``u`` times, renaming registers per copy (chaining
loop-carried recurrences through the copies so reductions stay serial — we
do not reassociate), retargeting affine memory references, and handling the
three trip-count situations a real unroller faces:

* **compile-time-known trip count** — main loop plus a statically sized
  remainder (or a full unroll when the trip count is at most the factor);
* **counted but compile-time-unknown** — preconditioning: the compiler
  emits a remainder loop and a runtime trip-count split (charged by the
  cost model via :attr:`UnrollResult.needs_precondition`);
* **while-style (non-counted)** — no remainder is possible; every copy
  keeps its early-exit branch, which is exactly the control-flow overhead
  the paper's Section 3 warns about.

Early-exit branches inside counted loops are likewise duplicated per copy,
and the remainder only runs when no exit fired (the interpreter enforces
this; see :func:`repro.ir.interp.run_unrolled`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.ir.instruction import Instruction
from repro.ir.loop import Loop, TripInfo
from repro.ir.types import MAX_UNROLL, Opcode
from repro.ir.values import Reg


@dataclass(frozen=True)
class UnrollResult:
    """Outcome of unrolling one loop.

    Attributes:
        original: the input loop.
        requested_factor: the factor asked for.
        factor: the effective factor (clamped to a known trip count).
        main: the unrolled main loop, or ``None`` when the trip count is
            known to be smaller than the factor's first full body.
        remainder: the loop covering leftover iterations, as it will
            *execute* for the loop's runtime trip count (``None`` when no
            leftover iterations run).
        remainder_emitted: whether the compiler emitted remainder code at
            all — true whenever the trip count is not compile-time known,
            even if the remainder happens to run zero times.  Drives the
            code-size (I-cache) model.
        needs_precondition: whether a runtime trip-count split is required
            (counted loop, unknown trip count, factor > 1).
    """

    original: Loop
    requested_factor: int
    factor: int
    main: Loop | None
    remainder: Loop | None
    remainder_emitted: bool
    needs_precondition: bool

    @property
    def emitted_size(self) -> int:
        """Total instructions emitted (main + any remainder code)."""
        size = 0
        if self.main is not None:
            size += self.main.size
        if self.remainder_emitted:
            size += self.original.size
        return size

    def loops(self) -> tuple[Loop, ...]:
        """The loops that actually execute, in order."""
        parts = []
        if self.main is not None:
            parts.append(self.main)
        if self.remainder is not None:
            parts.append(self.remainder)
        return tuple(parts)


def unroll(loop: Loop, factor: int) -> UnrollResult:
    """Unroll ``loop`` by ``factor`` (1 to :data:`MAX_UNROLL`)."""
    if not (1 <= factor <= MAX_UNROLL):
        raise ValueError(f"unroll factor must be in [1, {MAX_UNROLL}], got {factor}")
    if loop.unroll_factor != 1:
        raise ValueError(f"loop {loop.name!r} is already unrolled")

    trip = loop.trip
    effective = factor
    if trip.known:
        effective = min(factor, trip.compile_time)
    if effective == 1:
        return UnrollResult(
            original=loop,
            requested_factor=factor,
            factor=1,
            main=loop,
            remainder=None,
            remainder_emitted=False,
            needs_precondition=False,
        )

    if trip.counted:
        return _unroll_counted(loop, factor, effective)
    return _unroll_while(loop, factor, effective)


def _unroll_counted(loop: Loop, requested: int, u: int) -> UnrollResult:
    trip = loop.trip
    total = trip.runtime
    main_trips = total // u
    leftover = total % u

    main = None
    if main_trips > 0:
        main = loop.with_body(
            _unrolled_body(loop, u, base=0),
            trip=TripInfo(
                runtime=main_trips,
                compile_time=main_trips if trip.known else None,
                counted=True,
            ),
            unroll_factor=u,
            name=f"{loop.name}#u{u}",
        )

    remainder = None
    if leftover > 0:
        remainder = loop.with_body(
            _retargeted_body(loop, base=main_trips * u),
            trip=TripInfo(
                runtime=leftover,
                compile_time=leftover if trip.known else None,
                counted=True,
            ),
            unroll_factor=1,
            name=f"{loop.name}#rem",
        )

    remainder_emitted = (leftover > 0) if trip.known else True
    return UnrollResult(
        original=loop,
        requested_factor=requested,
        factor=u,
        main=main,
        remainder=remainder,
        remainder_emitted=remainder_emitted,
        needs_precondition=not trip.known,
    )


def _unroll_while(loop: Loop, requested: int, u: int) -> UnrollResult:
    """Unroll a while-style loop: every copy keeps its exit branch, the new
    bound is the body-execution count at which the original bound is hit."""
    if not loop.has_early_exit:
        raise ValueError(
            f"non-counted loop {loop.name!r} has no exit branch; its trip "
            "semantics would be undefined"
        )
    total = loop.trip.runtime
    main = loop.with_body(
        _unrolled_body(loop, u, base=0),
        trip=TripInfo(runtime=-(-total // u), compile_time=None, counted=False),
        unroll_factor=u,
        name=f"{loop.name}#u{u}",
    )
    return UnrollResult(
        original=loop,
        requested_factor=requested,
        factor=u,
        main=main,
        remainder=None,
        remainder_emitted=False,
        needs_precondition=False,
    )


def _unrolled_body(loop: Loop, u: int, base: int) -> tuple[Instruction, ...]:
    """Replicate the body ``u`` times with per-copy register renaming.

    Non-carried registers get a ``.k`` suffix per copy.  Carried registers
    chain: copy ``k`` reads the name written by copy ``k - 1`` and the last
    copy writes back the *original* name, so the backedge (and any remainder
    loop) sees the recurrence in its usual register.
    """
    carried = loop.carried_regs()
    current: dict[Reg, Reg] = {}
    body: list[Instruction] = []
    for k in range(u):
        for inst in loop.body:
            src_map = {
                reg: current[reg]
                for reg in inst.reg_srcs()
                if reg in current and current[reg] != reg
            }
            dest_map: dict[Reg, Reg] = {}
            for dest in inst.reg_dests():
                if dest in carried and k == u - 1:
                    dest_map[dest] = dest
                else:
                    dest_map[dest] = Reg(f"{dest.name}.{k}", dest.dtype)
            new_inst = inst.rewritten(src_map, dest_map)
            new_inst = new_inst.with_unrolled_mem(u, k, base)
            body.append(new_inst)
            current.update(dest_map)
    return tuple(body)


def _retargeted_body(loop: Loop, base: int) -> tuple[Instruction, ...]:
    """The original body re-based to start at original iteration ``base``
    (used for remainder loops), with fresh instruction identities."""
    body = []
    for inst in loop.body:
        new_inst = inst.rewritten({}, {})
        new_inst = new_inst.with_unrolled_mem(1, 0, base)
        body.append(new_inst)
    return tuple(body)


def unroll_all_factors(loop: Loop) -> dict[int, UnrollResult]:
    """Unroll ``loop`` at every factor in the label space — the measurement
    sweep the labelling pipeline performs for each loop."""
    return {factor: unroll(loop, factor) for factor in range(1, MAX_UNROLL + 1)}
