"""Scalar replacement of redundant memory accesses.

After unrolling, consecutive copies of the body often touch the same memory
locations (a stencil's ``a[i+1]`` in copy 0 is copy 1's ``a[i]``).  This pass
forwards values through registers instead of re-reading memory:

* **store-to-load forwarding** — a load whose address exactly matches an
  earlier store becomes a ``MOV`` from the stored value;
* **redundant-load elimination** — a load whose address matches an earlier
  load (with no intervening store that could touch it) becomes a ``MOV``
  from the earlier destination.

This is the paper's "many of these references can be eliminated altogether
with scalar replacement" benefit, and it is also a source of unrolling's
register-pressure cost: every forwarded value's live range now spans copies.

The pass is intra-body (distance-0) and deliberately conservative around
predication and indirect references: predicated memory ops neither provide
nor receive forwarded values, and any store whose target cannot be proven
distinct kills the affected availability set.
"""

from __future__ import annotations

from repro.ir.instruction import Instruction, mov
from repro.ir.loop import Loop
from repro.ir.types import Opcode
from repro.ir.values import MemRef, Operand

#: Availability key for an affine scalar memory location.
_Key = tuple[str, int, int]


def _key(mem: MemRef) -> _Key | None:
    if mem.indirect or mem.width != 1:
        return None
    return (mem.array, mem.index.coeff, mem.index.offset)


def scalar_replace_body(body: tuple[Instruction, ...]) -> tuple[Instruction, ...]:
    """Apply scalar replacement to one body, returning the new body."""
    available_stores: dict[_Key, Operand] = {}
    available_loads: dict[_Key, object] = {}
    new_body: list[Instruction] = []

    for inst in body:
        if inst.op is Opcode.STORE:
            key = _key(inst.mem) if inst.mem is not None else None
            if inst.pred is not None or key is None:
                # Unanalyzable store: kill everything that might alias.
                _kill_array(available_stores, inst.mem.array if inst.mem else None)
                _kill_array(available_loads, inst.mem.array if inst.mem else None)
            else:
                _kill_overlapping(available_stores, key)
                _kill_overlapping(available_loads, key)
                available_stores[key] = inst.srcs[0]
            new_body.append(inst)
            continue

        if inst.op is Opcode.LOAD and inst.pred is None and inst.mem is not None:
            key = _key(inst.mem)
            if key is not None:
                if key in available_stores:
                    new_body.append(mov(inst.dest, available_stores[key]))
                    available_loads[key] = inst.dest
                    continue
                if key in available_loads:
                    new_body.append(mov(inst.dest, available_loads[key]))
                    continue
                available_loads[key] = inst.dest
        new_body.append(inst)

    return tuple(new_body)


def _kill_overlapping(table: dict[_Key, object], store_key: _Key) -> None:
    """Invalidate availability entries a store to ``store_key`` may clobber.

    Same array, same stride, different offset addresses a provably distinct
    element every iteration; anything else on the same array is killed.
    """
    array, coeff, offset = store_key
    dead = [
        k
        for k in table
        if k[0] == array and not (k[1] == coeff and k[2] != offset)
    ]
    for k in dead:
        del table[k]


def _kill_array(table: dict[_Key, object], array: str | None) -> None:
    if array is None:
        table.clear()
        return
    for k in [k for k in table if k[0] == array]:
        del table[k]


def scalar_replace(loop: Loop) -> Loop:
    """Scalar replacement over a whole loop."""
    return loop.with_body(scalar_replace_body(loop.body))
