"""Memory-access coalescing: merging adjacent loads into wide loads.

Unrolling turns a single stride-1 load into several loads of *consecutive*
elements (``a[i]``, ``a[i+1]``, ...).  A machine with a wide memory path can
fetch two adjacent elements in one operation (Itanium's ``ldfpd``), halving
memory-port pressure.  The paper's Section 3 calls unrolling "key to exposing
adjacent memory references so that they can be merged into a single wide
reference"; this pass performs that merge.

Safety conditions for merging loads ``a[e]`` and ``a[e+1]``:

* both are unpredicated affine width-1 loads with the same stride;
* the reference's per-iteration stride must be *even* and the pair must
  start at an even element offset: a wide load needs 16-byte alignment on
  every iteration, which an odd stride cannot guarantee.  This is why
  odd unroll factors forfeit coalescing on unit-stride streams (the
  unrolled stride is ``coeff * factor``) — one of the physical reasons
  the paper's optimal-factor histogram is dominated by powers of two;
* no store that could touch ``a`` appears between the two loads in body
  order (the pair issues at the earlier position).
"""

from __future__ import annotations

from dataclasses import replace

from repro.ir.instruction import Instruction
from repro.ir.loop import Loop
from repro.ir.types import Opcode
from repro.ir.values import MemRef


def coalesce_loads_body(body: tuple[Instruction, ...]) -> tuple[Instruction, ...]:
    """Merge adjacent-element load pairs in one body (to fixpoint).

    One sweep considers the first load per (array, stride, offset); bodies
    with *duplicate* offsets (which scalar replacement normally removes
    first) can expose further pairs after a sweep, so sweeps repeat until
    nothing merges — making the pass idempotent regardless of pass order.
    """
    while True:
        merged = _coalesce_sweep(body)
        if merged is body:
            return body
        body = merged


def _coalesce_sweep(body: tuple[Instruction, ...]) -> tuple[Instruction, ...]:
    """A single merge sweep; returns ``body`` itself when nothing merged."""
    # Collect candidate loads grouped by (array, stride).
    candidates: dict[tuple[str, int], list[tuple[int, Instruction]]] = {}
    for pos, inst in enumerate(body):
        if (
            inst.op is Opcode.LOAD
            and inst.pred is None
            and inst.mem is not None
            and not inst.mem.indirect
            and inst.mem.width == 1
            and inst.mem.index.coeff % 2 == 0  # alignment holds every iteration
        ):
            key = (inst.mem.array, inst.mem.index.coeff)
            candidates.setdefault(key, []).append((pos, inst))

    merged_at: dict[int, Instruction] = {}
    removed: set[int] = set()

    for (array, _coeff), loads in candidates.items():
        by_offset = {}
        for pos, inst in loads:
            by_offset.setdefault(inst.mem.index.offset, (pos, inst))
        for offset in sorted(by_offset):
            if offset % 2 != 0:
                continue  # pairs must start even-aligned
            if offset + 1 not in by_offset:
                continue
            pos_a, load_a = by_offset[offset]
            pos_b, load_b = by_offset[offset + 1]
            if pos_a in removed or pos_b in removed or pos_a in merged_at or pos_b in merged_at:
                continue
            first, second = min(pos_a, pos_b), max(pos_a, pos_b)
            # The pair issues at the *earlier* position, so only the later
            # load's element is read earlier than before; a store between
            # the two that could touch that element blocks the merge.
            later_offset = body[second].mem.index.offset
            if _store_between(
                body, first, second, array, load_a.mem.index.coeff, (later_offset,)
            ):
                continue
            pair_mem = replace(load_a.mem, width=2)
            even_pos, even_load = (pos_a, load_a) if pos_a <= pos_b else (pos_b, load_b)
            pair = Instruction(
                Opcode.LOAD_PAIR,
                dest=load_a.dest,
                dest2=load_b.dest,
                mem=pair_mem,
            )
            merged_at[even_pos] = pair
            removed.add(pos_a if even_pos == pos_b else pos_b)

    if not merged_at and not removed:
        return body
    new_body: list[Instruction] = []
    for pos, inst in enumerate(body):
        if pos in removed:
            continue
        new_body.append(merged_at.get(pos, inst))
    return tuple(new_body)


def _store_between(
    body: tuple[Instruction, ...],
    first: int,
    second: int,
    array: str,
    coeff: int = 0,
    offsets: tuple[int, ...] = (),
) -> bool:
    """Whether a store between two positions could touch the pair's
    elements.  Affine stores with the same stride and a provably different
    offset are harmless; anything else on the same array blocks the merge."""
    for pos in range(first, second):
        inst = body[pos]
        if inst.op is not Opcode.STORE or inst.mem is None or inst.mem.array != array:
            continue
        mem = inst.mem
        if mem.indirect or inst.pred is not None:
            return True
        if mem.index.coeff == coeff and mem.index.offset not in offsets:
            continue  # same stride, distinct element every iteration
        return True
    return False


def coalesce_loads(loop: Loop) -> Loop:
    """Coalescing over a whole loop."""
    return loop.with_body(coalesce_loads_body(loop.body))
