"""The per-factor optimization pipeline: unroll, then clean up.

This is the sequence the simulated compiler applies when it decides to unroll
a loop by some factor — mirroring ORC's ordering, where unrolling runs before
the scalar optimizer and the scheduler:

1. unroll by the chosen factor;
2. scalar replacement (store-to-load forwarding and redundant-load
   elimination across the now-adjacent copies);
3. memory coalescing (merge adjacent stride-1 loads into wide loads);
4. dead code elimination.

The remainder loop is left untouched (it executes at most ``factor - 1``
times, so optimizing it is not worth code growth — the same call ORC makes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.ir.loop import Loop
from repro.transforms.coalesce import coalesce_loads
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.scalar_replacement import scalar_replace
from repro.transforms.unroll import UnrollResult, unroll


@dataclass(frozen=True)
class OptimizationPlan:
    """Switches for the post-unroll cleanup passes.

    The defaults model the full compiler; the ablation benches toggle the
    memory optimizations off to measure how much of unrolling's benefit
    flows through them.
    """

    scalar_replacement: bool = True
    coalescing: bool = True
    dead_code_elimination: bool = True


def optimize_for_factor(
    loop: Loop, factor: int, plan: OptimizationPlan | None = None
) -> UnrollResult:
    """Unroll ``loop`` by ``factor`` and run the cleanup pipeline on the
    unrolled main loop, returning the final :class:`UnrollResult`."""
    plan = plan or OptimizationPlan()
    result = unroll(loop, factor)
    main = result.main
    if main is None:
        return result
    if plan.scalar_replacement:
        main = scalar_replace(main)
    if plan.coalescing:
        main = coalesce_loads(main)
    if plan.dead_code_elimination:
        main = eliminate_dead_code(main)
    if main is result.main:
        return result
    return dc_replace(result, main=main)
