"""Dead code elimination for loop bodies.

Removes instructions whose results are never used, keeping everything with a
side effect (stores, branches, prefetches) and every definition that feeds a
loop-carried recurrence (such values are live around the backedge even when
no later instruction in the body reads them).  Runs to a fixpoint, since
removing one dead instruction can kill its operands' last uses.
"""

from __future__ import annotations

from repro.ir.instruction import Instruction
from repro.ir.loop import Loop
from repro.ir.values import Reg


def eliminate_dead_code(loop: Loop) -> Loop:
    """Return ``loop`` with dead instructions removed."""
    carried = loop.carried_regs()
    body = list(loop.body)
    changed = True
    while changed:
        changed = False
        used: set[Reg] = set()
        for inst in body:
            used.update(inst.reg_srcs())
        kept: list[Instruction] = []
        for inst in body:
            if _has_side_effect(inst):
                kept.append(inst)
                continue
            dests = list(inst.reg_dests())
            live = any(d in used or d in carried for d in dests)
            if live:
                kept.append(inst)
            else:
                changed = True
        body = kept
    if len(body) == len(loop.body):
        return loop
    if not body:
        raise ValueError(f"DCE removed the entire body of {loop.name!r}")
    return loop.with_body(tuple(body))


def _has_side_effect(inst: Instruction) -> bool:
    return inst.op.is_store or inst.op.is_branch or not any(True for _ in inst.reg_dests())
