"""Loop transformations: unrolling and the post-unroll cleanup passes."""

from repro.transforms.coalesce import coalesce_loads, coalesce_loads_body
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.pipeline import OptimizationPlan, optimize_for_factor
from repro.transforms.scalar_replacement import scalar_replace, scalar_replace_body
from repro.transforms.unroll import UnrollResult, unroll, unroll_all_factors

__all__ = [
    "OptimizationPlan",
    "UnrollResult",
    "coalesce_loads",
    "coalesce_loads_body",
    "eliminate_dead_code",
    "optimize_for_factor",
    "scalar_replace",
    "scalar_replace_body",
    "unroll",
    "unroll_all_factors",
]
