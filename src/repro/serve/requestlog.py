"""The served-request log: every prediction, durably, off the hot path.

The ROADMAP's closed-loop story starts here: retraining on real traffic
needs a record of what was served — which features, which classifier,
what the model answered and how sure it was.  :class:`RequestLog` appends
one JSON object per response to a log file without ever making a client
wait for the disk:

* **Off the hot path.**  ``record()`` only enqueues (an unbounded
  in-process queue, O(1), no I/O, no locks shared with the serve path);
  a dedicated writer thread drains the queue and performs the actual
  writes.
* **Atomic line flushes.**  The file is opened ``O_APPEND`` and the
  writer emits only complete, newline-terminated lines per ``os.write``
  call.  POSIX append-mode writes are atomic for these sizes, so many
  daemon *processes* (the multi-process serve tier) can share one log
  path: lines interleave, they never tear.
* **Buffered.**  The writer drains whatever has accumulated into a
  single ``write`` — under load, hundreds of records cost one syscall.
* **Size-rotated.**  With ``max_bytes`` set, a live file that crosses
  the limit is renamed through the classic ``.1``, ``.2``, … chain and a
  fresh file is opened.  Rotation only ever happens *between* batched
  writes and each write carries only whole lines, so rotation never
  tears a record.  Sharers of one path coordinate through an exclusive
  lockfile plus an inode check before every write: whichever process
  rotates first wins, the others notice the live inode changed and
  re-open.

Records carry: ``ts`` (epoch seconds), ``worker`` (the serving worker's
id, ``null`` for a single-process daemon), ``id`` (the client's request
id), ``classifier``, ``features_sha256`` (checksum of the request's
feature vector or loop source — the dedup/drift key for the closed
loop), the raw ``features`` vector or loop ``source`` (what the
lifecycle replays for drift scans and canary evaluation), ``ok``,
``factor``, ``confidence`` (ensemble requests), an ``error_type`` for
non-ok responses, and ``latency_ms`` measured from gateway admission to
response delivery.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
from pathlib import Path
from typing import Iterator

_CLOSE = object()


def features_checksum(request) -> str | None:
    """The closed-loop dedup key: SHA-256 over the request's payload.

    Feature vectors hash their canonical JSON (so a replayed request with
    the same numbers collides regardless of client formatting); source
    requests hash the loop text.  Requests with neither — malformed lines,
    admin probes — have no checksum.
    """
    if not isinstance(request, dict):
        return None
    payload = request.get("features")
    if payload is None:
        payload = request.get("source")
    if payload is None:
        return None
    try:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        canonical = repr(payload)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RequestLog:
    """Append-mode JSON-lines log with a buffered background writer.

    ``record(entry)`` never blocks and never raises into the serve path;
    ``close()`` drains everything recorded so far, so a drain-shaped
    daemon shutdown loses no lines.  ``records`` counts what has been
    durably written (not merely enqueued) — ``healthz`` reports it,
    alongside ``bytes_written`` and the live file's current size so
    operators can alarm on a stalled log.
    """

    def __init__(
        self,
        path: str | Path,
        worker: int | None = None,
        max_bytes: int | None = None,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.path = Path(path)
        self.worker = worker
        self.max_bytes = max_bytes
        self.records = 0
        self.write_errors = 0
        self.bytes_written = 0
        self.rotations = 0
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._fd = self._open()
        self._closed = False
        self._writer = threading.Thread(
            target=self._drain, name="request-log-writer", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------

    def record(self, entry: dict) -> None:
        """Enqueue one record; the hot path pays for a queue put, nothing
        else.  Records arriving after ``close()`` are dropped silently —
        the log is already sealed."""
        if self._closed:
            return
        self._queue.put(entry)

    def close(self) -> None:
        """Seal the log: flush every record enqueued so far, then close
        the file.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_CLOSE)
        self._writer.join(timeout=30)
        os.close(self._fd)

    # ------------------------------------------------------------------

    def _open(self) -> int:
        return os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def _reopen_if_rotated(self) -> None:
        """Follow the live path if a sibling process rotated it away.

        ``O_APPEND`` writes land wherever the descriptor points; after a
        rotation that is the ``.1`` segment, which would still be safe
        (whole lines, never torn) but would grow the wrong file.  An
        inode comparison per batch keeps every writer on the live file.
        """
        try:
            live = os.stat(self.path)
        except FileNotFoundError:
            live = None
        if live is not None and live.st_ino == os.fstat(self._fd).st_ino:
            return
        try:
            fd = self._open()
        except OSError:
            return  # keep the old descriptor; better a misplaced line than none
        os.close(self._fd)
        self._fd = fd

    def _maybe_rotate(self) -> None:
        """Rotate the live file through the ``.N`` chain once it crosses
        ``max_bytes``.  A ``.rotating`` lockfile (``O_CREAT|O_EXCL``)
        elects one rotator among processes sharing the path; losers skip
        and pick up the fresh inode before their next write."""
        if self.max_bytes is None:
            return
        try:
            if os.fstat(self._fd).st_size < self.max_bytes:
                return
        except OSError:
            return
        lock = str(self.path) + ".rotating"
        try:
            lock_fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError:
            return  # a sibling is rotating; the inode check re-syncs us
        try:
            try:
                live = os.stat(self.path)
            except FileNotFoundError:
                return
            if live.st_ino != os.fstat(self._fd).st_ino:
                return  # already rotated under us between check and lock
            # Shift the chain oldest-first: .N -> .N+1, …, live -> .1.
            for index in sorted(_segment_indexes(self.path), reverse=True):
                os.replace(
                    f"{self.path}.{index}", f"{self.path}.{index + 1}"
                )
            os.replace(self.path, f"{self.path}.1")
            fd = self._open()
            os.close(self._fd)
            self._fd = fd
            self.rotations += 1
        except OSError:
            pass  # a failed rotation must not take the writer down
        finally:
            os.close(lock_fd)
            try:
                os.unlink(lock)
            except OSError:
                pass

    def _drain(self) -> None:
        """Writer thread: batch whatever has accumulated into one append.

        Each ``os.write`` carries only whole ``\\n``-terminated lines, so
        concurrent writers on the same path interleave at line
        granularity (O_APPEND atomicity) — never mid-record.  Rotation
        happens only between batches, after a complete write.
        """
        while True:
            entry = self._queue.get()
            closing = entry is _CLOSE
            batch = [] if closing else [entry]
            # Sweep the backlog: one syscall per burst, not per record.
            while True:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _CLOSE:
                    closing = True
                    break
                batch.append(extra)
            if batch:
                lines = "".join(
                    json.dumps(entry, sort_keys=True) + "\n" for entry in batch
                )
                self._reopen_if_rotated()
                try:
                    data = lines.encode("utf-8")
                    os.write(self._fd, data)
                    self.records += len(batch)
                    self.bytes_written += len(data)
                except OSError:
                    # A full disk must not take the serve path down with
                    # it; count the loss so healthz can surface it.
                    self.write_errors += len(batch)
                else:
                    self._maybe_rotate()
            if closing:
                return

    def stats(self) -> dict:
        try:
            file_bytes = os.stat(self.path).st_size
        except OSError:
            file_bytes = 0
        return {
            "path": str(self.path),
            "records": self.records,
            "write_errors": self.write_errors,
            "bytes_written": self.bytes_written,
            "file_bytes": file_bytes,
            "rotations": self.rotations,
        }


def _segment_indexes(path: Path) -> list[int]:
    """Numeric suffixes of existing rotated segments (``path.3`` -> 3)."""
    prefix = path.name + "."
    indexes = []
    for sibling in path.parent.glob(prefix + "*"):
        suffix = sibling.name[len(prefix):]
        if suffix.isdigit():
            indexes.append(int(suffix))
    return indexes


def request_log_segments(path: str | Path) -> list[Path]:
    """Every file of a possibly-rotated log, oldest first, live file last.

    The highest ``.N`` suffix is the oldest segment (rotation shifts the
    chain upward), so replay order is ``.N``, …, ``.1``, then the live
    path.  Missing files (no rotation yet, or no log at all) simply drop
    out of the list.
    """
    path = Path(path)
    ordered = [
        Path(f"{path}.{index}")
        for index in sorted(_segment_indexes(path), reverse=True)
    ]
    if path.exists():
        ordered.append(path)
    return ordered


def iter_request_log(path: str | Path) -> Iterator[dict]:
    """Stream records across every rotated segment in write order — the
    lifecycle replay reader.  Rotation preserves whole lines, so each
    line parses; blank lines (none are written, but editors add them) are
    skipped."""
    for segment in request_log_segments(path):
        with open(segment, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)


def read_request_log(path: str | Path) -> list[dict]:
    """Parse one request-log file back into records (the retraining
    side's entry point; also what the tests assert against).  For a
    rotated log, :func:`iter_request_log` walks every segment."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
