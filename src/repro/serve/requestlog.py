"""The served-request log: every prediction, durably, off the hot path.

The ROADMAP's closed-loop story starts here: retraining on real traffic
needs a record of what was served — which features, which classifier,
what the model answered and how sure it was.  :class:`RequestLog` appends
one JSON object per response to a log file without ever making a client
wait for the disk:

* **Off the hot path.**  ``record()`` only enqueues (an unbounded
  in-process queue, O(1), no I/O, no locks shared with the serve path);
  a dedicated writer thread drains the queue and performs the actual
  writes.
* **Atomic line flushes.**  The file is opened ``O_APPEND`` and the
  writer emits only complete, newline-terminated lines per ``os.write``
  call.  POSIX append-mode writes are atomic for these sizes, so many
  daemon *processes* (the multi-process serve tier) can share one log
  path: lines interleave, they never tear.
* **Buffered.**  The writer drains whatever has accumulated into a
  single ``write`` — under load, hundreds of records cost one syscall.

Records carry: ``ts`` (epoch seconds), ``worker`` (the serving worker's
id, ``null`` for a single-process daemon), ``id`` (the client's request
id), ``classifier``, ``features_sha256`` (checksum of the request's
feature vector or loop source — the dedup/drift key for the closed
loop), ``ok``, ``factor``, ``confidence`` (ensemble requests), an
``error_type`` for non-ok responses, and ``latency_ms`` measured from
gateway admission to response delivery.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
from pathlib import Path

_CLOSE = object()


def features_checksum(request) -> str | None:
    """The closed-loop dedup key: SHA-256 over the request's payload.

    Feature vectors hash their canonical JSON (so a replayed request with
    the same numbers collides regardless of client formatting); source
    requests hash the loop text.  Requests with neither — malformed lines,
    admin probes — have no checksum.
    """
    if not isinstance(request, dict):
        return None
    payload = request.get("features")
    if payload is None:
        payload = request.get("source")
    if payload is None:
        return None
    try:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        canonical = repr(payload)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RequestLog:
    """Append-mode JSON-lines log with a buffered background writer.

    ``record(entry)`` never blocks and never raises into the serve path;
    ``close()`` drains everything recorded so far, so a drain-shaped
    daemon shutdown loses no lines.  ``records`` counts what has been
    durably written (not merely enqueued) — ``healthz`` reports it.
    """

    def __init__(self, path: str | Path, worker: int | None = None):
        self.path = Path(path)
        self.worker = worker
        self.records = 0
        self.write_errors = 0
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._closed = False
        self._writer = threading.Thread(
            target=self._drain, name="request-log-writer", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------

    def record(self, entry: dict) -> None:
        """Enqueue one record; the hot path pays for a queue put, nothing
        else.  Records arriving after ``close()`` are dropped silently —
        the log is already sealed."""
        if self._closed:
            return
        self._queue.put(entry)

    def close(self) -> None:
        """Seal the log: flush every record enqueued so far, then close
        the file.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_CLOSE)
        self._writer.join(timeout=30)
        os.close(self._fd)

    # ------------------------------------------------------------------

    def _drain(self) -> None:
        """Writer thread: batch whatever has accumulated into one append.

        Each ``os.write`` carries only whole ``\\n``-terminated lines, so
        concurrent writers on the same path interleave at line
        granularity (O_APPEND atomicity) — never mid-record.
        """
        while True:
            entry = self._queue.get()
            closing = entry is _CLOSE
            batch = [] if closing else [entry]
            # Sweep the backlog: one syscall per burst, not per record.
            while True:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _CLOSE:
                    closing = True
                    break
                batch.append(extra)
            if batch:
                lines = "".join(
                    json.dumps(entry, sort_keys=True) + "\n" for entry in batch
                )
                try:
                    os.write(self._fd, lines.encode("utf-8"))
                    self.records += len(batch)
                except OSError:
                    # A full disk must not take the serve path down with
                    # it; count the loss so healthz can surface it.
                    self.write_errors += len(batch)
            if closing:
                return

    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "records": self.records,
            "write_errors": self.write_errors,
        }


def read_request_log(path: str | Path) -> list[dict]:
    """Parse a request log back into records (the retraining side's entry
    point; also what the tests assert against)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
