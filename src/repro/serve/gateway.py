"""Admission control, deadlines, and graceful drain for the serve path.

The engine answers requests; the gateway decides *whether and when* they
get to run, and on *which replica*.  Four protections wrap
:class:`~repro.serve.engine.PredictionEngine`:

* **Backpressure** — at most ``queue_limit`` requests may be pending
  (queued or executing) at once.  A request arriving past that bound is
  rejected *immediately* with a typed ``overloaded`` error instead of
  growing an unbounded queue: the client learns to back off while the
  answer is still cheap.
* **Per-client fairness** — when callers tag requests with a client
  identity (the daemon tags each connection), no client may hold more
  than its fair share of the queue: ``queue_limit // active_clients``
  slots (at least one).  A connection flooding the daemon is rejected
  above its share while everyone else's requests keep being admitted —
  one bad client cannot starve the rest of queue slots.
* **Deadlines** — with ``deadline_s`` set, a request's clock starts at
  admission.  If the deadline has already passed when a worker picks the
  request up, the engine is never invoked (the client has given up;
  computing would be pure waste); if it passes *during* computation, the
  result is discarded and a ``deadline-exceeded`` error is returned so the
  client never acts on an answer it had stopped waiting for.
* **Graceful drain** — :meth:`ServeGateway.drain` stops admissions (new
  requests get ``overloaded``) and blocks until every in-flight request has
  finished, so shutdown never drops accepted work.

Execution is *batched*: admission (:meth:`ServeGateway.admit`) hands back
a token whose future resolves to the response, and
:meth:`ServeGateway.execute_batch` runs any number of admitted tokens as
**one** engine call (``PredictionEngine.handle_batch``, which stacks
feature requests into a single vectorized prediction).  The gateway can
hold several engine **replicas** — independent ``PredictionEngine``
instances sharing one immutable loaded artifact, zero copies — and deals
batches to them round-robin, so concurrent batches run on separate
replicas.  :meth:`ServeGateway.swap_replicas` atomically replaces the
replica set between batches (in-flight batches finish on the engines they
started with), which is what makes the daemon's hot artifact reload a
zero-downtime operation.

Every decision is tallied in :class:`GatewayCounters`, batch shapes in
:class:`BatchStats`; the CLI and the daemon's ``healthz`` expose both — an
overloaded or deadline-starved serve run is visible in its output, not
just slow.

The ``serve.malformed`` fault-injection site sits between admission and the
engine: a fault plan can replace an accepted request with structural
garbage, proving the engine's error taxonomy holds even behind the gateway.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait

from repro.resilience.faults import get_injector
from repro.serve.engine import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    PredictionEngine,
    error_response,
    parse_request_lines,
)


@dataclasses.dataclass(frozen=True)
class GatewayConfig:
    """Admission-control knobs for one :class:`ServeGateway`."""

    max_workers: int = 4
    queue_limit: int = 64
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")


@dataclasses.dataclass
class GatewayCounters:
    """What the gateway did with every request it saw."""

    admitted: int = 0
    served_ok: int = 0
    served_error: int = 0
    overloaded: int = 0
    deadline_exceeded: int = 0

    def balanced(self) -> bool:
        """Whether every admitted request has been accounted for — after a
        drain, ``admitted == ok + error + deadline_exceeded`` or responses
        were dropped."""
        return self.admitted == (
            self.served_ok + self.served_error + self.deadline_exceeded
        )

    def summary(self) -> str:
        return (
            f"gateway: {self.admitted} admitted, {self.served_ok} ok, "
            f"{self.served_error} error(s), {self.overloaded} overloaded, "
            f"{self.deadline_exceeded} past deadline"
        )


@dataclasses.dataclass
class BatchStats:
    """Shape accounting for the batched execution path.

    The ``window_*`` fields mirror the daemon's latency-aware window
    controller (see ``repro.serve.daemon.WindowController``): the window
    it is currently running, and how many times it shrank toward zero
    (under-full batches — latency wins) or grew back toward the
    configured base (sustained queue depth — throughput wins).  They stay
    zero for gateways driven without a daemon in front.
    """

    batches: int = 0
    batched_requests: int = 0
    max_batch: int = 0
    window_ms: float = 0.0
    window_shrinks: int = 0
    window_grows: int = 0

    def record(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        self.max_batch = max(self.max_batch, size)

    def mean_batch(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0


@dataclasses.dataclass
class AdmittedRequest:
    """One admission decision: the request, its future, and its clock.

    ``admitted`` is False for rejections, whose ``future`` is already
    resolved to the typed ``overloaded`` response; only admitted tokens
    may be passed to :meth:`ServeGateway.execute_batch` (exactly once).
    """

    request: object
    request_id: object
    client: str | None
    enqueued: float
    future: "Future[dict]"
    admitted: bool


def _rejected(response: dict) -> "Future[dict]":
    """An already-resolved future, so rejections and admissions present the
    same interface to callers."""
    future: "Future[dict]" = Future()
    future.set_result(response)
    return future


class ServeGateway:
    """Bounded, deadline-aware front door for prediction-engine replicas.

    ``engine`` may be a single :class:`PredictionEngine` or a sequence of
    replicas sharing one loaded artifact; ``self.engine`` is always the
    first replica (the single-engine callers never notice).  Usable as a
    context manager; exit drains (never drops) in-flight work.
    """

    def __init__(self, engine, config: GatewayConfig | None = None):
        replicas = (
            (engine,) if isinstance(engine, PredictionEngine) else tuple(engine)
        )
        if not replicas:
            raise ValueError("at least one engine replica is required")
        self._replicas = replicas
        self.engine = replicas[0]
        self.config = config or GatewayConfig()
        self.counters = GatewayCounters()
        self.batch_stats = BatchStats()
        self._lock = threading.Lock()
        self._pending = 0
        self._client_pending: dict[str, int] = {}
        self._next_replica = 0
        self._draining = False
        self._pool = ThreadPoolExecutor(max_workers=self.config.max_workers)

    @property
    def replicas(self) -> tuple[PredictionEngine, ...]:
        return self._replicas

    def swap_replicas(self, replicas) -> None:
        """Atomically replace the replica set (hot artifact reload).

        Batches already executing finish on the engines they started with;
        every batch dealt after the swap runs on the new replicas — no
        request is dropped or delayed by the exchange.
        """
        replicas = tuple(replicas)
        if not replicas:
            raise ValueError("at least one engine replica is required")
        with self._lock:
            self._replicas = replicas
            self.engine = replicas[0]
            self._next_replica = 0

    # ------------------------------------------------------------------

    def admit(self, request, client: str | None = None) -> AdmittedRequest:
        """Decide one request's fate *now*; never blocks, never raises.

        Admitted tokens hold an unresolved future and must be handed to
        :meth:`execute_batch`; rejected tokens carry their resolved typed
        ``overloaded`` response and must not be.
        """
        request_id = request.get("id") if isinstance(request, dict) else None
        with self._lock:
            rejection = self._admission_error(request_id, client)
            if rejection is not None:
                self.counters.overloaded += 1
                return AdmittedRequest(
                    request, request_id, client, time.monotonic(),
                    _rejected(rejection), admitted=False,
                )
            self._pending += 1
            self.counters.admitted += 1
            if client is not None:
                self._client_pending[client] = self._client_pending.get(client, 0) + 1
            return AdmittedRequest(
                request, request_id, client, time.monotonic(), Future(), admitted=True
            )

    def _admission_error(self, request_id, client: str | None) -> dict | None:
        """The typed rejection for one admission attempt, or ``None`` to
        admit.  Caller holds the lock."""
        if self._draining:
            return error_response(
                request_id, ERROR_OVERLOADED, "gateway is draining; retry elsewhere"
            )
        if self._pending >= self.config.queue_limit:
            return error_response(
                request_id,
                ERROR_OVERLOADED,
                f"queue full ({self.config.queue_limit} request(s) pending); "
                "back off and retry",
            )
        if client is not None:
            active = len(self._client_pending)
            if client not in self._client_pending:
                active += 1
            # Divisor floor of 2: even a lone client may hold at most half
            # the queue, so slots are always free for a newcomer — without
            # it, one flooder fills the queue and fairness never applies.
            share = max(1, self.config.queue_limit // max(2, active))
            if self._client_pending.get(client, 0) >= share:
                return error_response(
                    request_id,
                    ERROR_OVERLOADED,
                    f"client over fair share ({share} of "
                    f"{self.config.queue_limit} slot(s) across {active} "
                    "client(s)); back off and retry",
                )
        return None

    def reject(self, request, message: str) -> dict:
        """A typed ``overloaded`` rejection, counted like any other.

        For callers that must refuse a request *without* consulting
        admission control — the daemon uses this for reads that arrive
        after shutdown has begun, when admitting would enqueue a token no
        batch loop is left to execute.
        """
        request_id = request.get("id") if isinstance(request, dict) else None
        with self._lock:
            self.counters.overloaded += 1
        return error_response(request_id, ERROR_OVERLOADED, message)

    def execute_batch(self, tokens) -> None:
        """Run admitted tokens as one engine batch on the next replica.

        Each token's future resolves to its response.  If the pool is
        already shut down (a drain race), every token resolves to a typed
        ``overloaded`` error and the admission is rolled back — callers
        never see an exception or a hung future.
        """
        tokens = [token for token in tokens if token.admitted]
        if not tokens:
            return
        with self._lock:
            replica = self._replicas[self._next_replica % len(self._replicas)]
            self._next_replica += 1
            try:
                # Still under the lock: drain() cannot shut the pool down
                # between the admission check and the hand-off.
                self._pool.submit(self._run_batch, tokens, replica)
                return
            except RuntimeError:
                # The pool was already shut down before we saw _draining.
                for token in tokens:
                    self._pending -= 1
                    self.counters.admitted -= 1
                    self.counters.overloaded += 1
                    self._release_client(token.client)
        for token in tokens:
            token.future.set_result(
                error_response(
                    token.request_id, ERROR_OVERLOADED,
                    "gateway is draining; retry elsewhere",
                )
            )

    def submit(self, request, client: str | None = None) -> "Future[dict]":
        """Admit one request; the future resolves to its response dict.

        Rejections (draining gateway, full queue, client over fair share)
        resolve immediately with a typed ``overloaded`` error — ``submit``
        itself never blocks and never raises on bad input.
        """
        token = self.admit(request, client)
        if token.admitted:
            self.execute_batch([token])
        return token.future

    def serve_batch(self, requests) -> list[dict]:
        """Submit a batch and wait; responses come back in request order
        (rejected slots carry their ``overloaded`` error in place).

        Submissions are throttled so the batch never trips admission
        control against itself: at most ``queue_limit`` of its requests are
        in flight at once, and the next submission waits for *any* — not
        the oldest — outstanding one to finish, so one slow request cannot
        idle the window while its neighbours' slots sit free.  The queue
        bound thus protects concurrent :meth:`submit` callers from *each
        other*, while a batch of any size is served completely — an
        ``overloaded`` slot here means genuine contention (another client,
        or a draining gateway), never batch length.
        """
        requests = list(requests)
        responses: list[dict | None] = [None] * len(requests)
        in_flight: dict["Future[dict]", int] = {}
        for index, request in enumerate(requests):
            while len(in_flight) >= self.config.queue_limit:
                done, _ = wait(tuple(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    responses[in_flight.pop(future)] = future.result()
            in_flight[self.submit(request)] = index
        for future, index in in_flight.items():
            responses[index] = future.result()
        return responses

    def serve_lines(self, lines) -> list[dict]:
        """The JSON-lines protocol through the gateway's admission control."""
        return self.serve_batch(parse_request_lines(lines))

    def drain(self) -> None:
        """Stop admitting and wait for every in-flight request to finish."""
        with self._lock:
            self._draining = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ServeGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()

    # ------------------------------------------------------------------

    def _release_client(self, client: str | None) -> None:
        """Return one fair-share slot.  Caller holds the lock."""
        if client is None:
            return
        remaining = self._client_pending.get(client, 0) - 1
        if remaining > 0:
            self._client_pending[client] = remaining
        else:
            self._client_pending.pop(client, None)

    def _run_batch(self, tokens, replica: PredictionEngine) -> None:
        """Worker-side: enforce deadlines around one batched engine call.

        Slots are released (and counters settled) *before* any future
        resolves — a caller observing a completed future must find the
        queue capacity it consumed already free again.
        """
        try:
            responses = self._compute_batch(tokens, replica)
        except BaseException as error:  # the taxonomy's floor, worker edition
            responses = [
                error_response(token.request_id, ERROR_INTERNAL, str(error))
                for token in tokens
            ]
        with self._lock:
            self.batch_stats.record(len(tokens))
            for token, response in zip(tokens, responses):
                if response.get("ok"):
                    self.counters.served_ok += 1
                elif response["error"]["type"] == ERROR_DEADLINE_EXCEEDED:
                    self.counters.deadline_exceeded += 1
                else:
                    self.counters.served_error += 1
                self._pending -= 1
                self._release_client(token.client)
        for token, response in zip(tokens, responses):
            token.future.set_result(response)

    def _compute_batch(self, tokens, replica: PredictionEngine) -> list[dict]:
        """One batched engine call, bracketed by the two deadline checks."""
        deadline = self.config.deadline_s
        responses: list[dict | None] = [None] * len(tokens)
        live: list[int] = []
        requests: list[object] = []
        now = time.monotonic()
        for index, token in enumerate(tokens):
            waited = now - token.enqueued
            if deadline is not None and waited > deadline:
                responses[index] = error_response(
                    token.request_id,
                    ERROR_DEADLINE_EXCEEDED,
                    f"waited {waited:.3f}s in queue against a {deadline}s deadline",
                    waited,
                )
                continue
            request = token.request
            injector = get_injector()
            if injector.active:
                request = injector.mangle(
                    "serve.malformed", str(token.request_id), request
                )
            live.append(index)
            requests.append(request)
        if live:
            for index, response in zip(live, replica.handle_batch(requests)):
                token = tokens[index]
                elapsed = time.monotonic() - token.enqueued
                if deadline is not None and elapsed > deadline:
                    response = error_response(
                        token.request_id,
                        ERROR_DEADLINE_EXCEEDED,
                        f"completed in {elapsed:.3f}s against a {deadline}s deadline",
                        elapsed,
                    )
                responses[index] = response
        return responses
