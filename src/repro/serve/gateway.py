"""Admission control, deadlines, and graceful drain for the serve path.

The engine answers one request; the gateway decides *whether and when* it
gets to.  Three protections wrap :class:`~repro.serve.engine.PredictionEngine`:

* **Backpressure** — at most ``queue_limit`` requests may be pending
  (queued or executing) at once.  A request arriving past that bound is
  rejected *immediately* with a typed ``overloaded`` error instead of
  growing an unbounded queue: the client learns to back off while the
  answer is still cheap.
* **Deadlines** — with ``deadline_s`` set, a request's clock starts at
  admission.  If the deadline has already passed when a worker picks the
  request up, the engine is never invoked (the client has given up;
  computing would be pure waste); if it passes *during* computation, the
  result is discarded and a ``deadline-exceeded`` error is returned so the
  client never acts on an answer it had stopped waiting for.
* **Graceful drain** — :meth:`ServeGateway.drain` stops admissions (new
  requests get ``overloaded``) and blocks until every in-flight request has
  finished, so shutdown never drops accepted work.

Every decision is tallied in :class:`GatewayCounters`, which the CLI prints
alongside the latency rollup — an overloaded or deadline-starved serve run
is visible in its output, not just slow.

The ``serve.malformed`` fault-injection site sits between admission and the
engine: a fault plan can replace an accepted request with structural
garbage, proving the engine's error taxonomy holds even behind the gateway.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from repro.resilience.faults import get_injector
from repro.serve.engine import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_OVERLOADED,
    PredictionEngine,
    error_response,
    parse_request_lines,
)


@dataclasses.dataclass(frozen=True)
class GatewayConfig:
    """Admission-control knobs for one :class:`ServeGateway`."""

    max_workers: int = 4
    queue_limit: int = 64
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")


@dataclasses.dataclass
class GatewayCounters:
    """What the gateway did with every request it saw."""

    admitted: int = 0
    served_ok: int = 0
    served_error: int = 0
    overloaded: int = 0
    deadline_exceeded: int = 0

    def summary(self) -> str:
        return (
            f"gateway: {self.admitted} admitted, {self.served_ok} ok, "
            f"{self.served_error} error(s), {self.overloaded} overloaded, "
            f"{self.deadline_exceeded} past deadline"
        )


def _rejected(response: dict) -> "Future[dict]":
    """An already-resolved future, so rejections and admissions present the
    same interface to callers."""
    future: "Future[dict]" = Future()
    future.set_result(response)
    return future


class ServeGateway:
    """Bounded, deadline-aware front door for a :class:`PredictionEngine`.

    Usable as a context manager; exit drains (never drops) in-flight work.
    """

    def __init__(self, engine: PredictionEngine, config: GatewayConfig | None = None):
        self.engine = engine
        self.config = config or GatewayConfig()
        self.counters = GatewayCounters()
        self._lock = threading.Lock()
        self._pending = 0
        self._draining = False
        self._pool = ThreadPoolExecutor(max_workers=self.config.max_workers)

    # ------------------------------------------------------------------

    def submit(self, request) -> "Future[dict]":
        """Admit one request; the future resolves to its response dict.

        Rejections (draining gateway, full queue) resolve immediately with
        a typed ``overloaded`` error — ``submit`` itself never blocks and
        never raises on bad input.
        """
        request_id = request.get("id") if isinstance(request, dict) else None
        with self._lock:
            if self._draining:
                self.counters.overloaded += 1
                return _rejected(
                    error_response(
                        request_id, ERROR_OVERLOADED, "gateway is draining; retry elsewhere"
                    )
                )
            if self._pending >= self.config.queue_limit:
                self.counters.overloaded += 1
                return _rejected(
                    error_response(
                        request_id,
                        ERROR_OVERLOADED,
                        f"queue full ({self.config.queue_limit} request(s) pending); "
                        "back off and retry",
                    )
                )
            self._pending += 1
            self.counters.admitted += 1
            try:
                # Still under the lock: drain() cannot shut the pool down
                # between the admission check and the hand-off.
                return self._pool.submit(
                    self._run, request, request_id, time.monotonic()
                )
            except RuntimeError:
                # The pool was already shut down before we saw _draining.
                self._pending -= 1
                self.counters.admitted -= 1
                self.counters.overloaded += 1
                return _rejected(
                    error_response(
                        request_id, ERROR_OVERLOADED, "gateway is draining; retry elsewhere"
                    )
                )

    def serve_batch(self, requests) -> list[dict]:
        """Submit a batch and wait; responses come back in request order
        (rejected slots carry their ``overloaded`` error in place).

        Submissions are throttled so the batch never trips admission
        control against itself: at most ``queue_limit`` of its requests are
        in flight at once, and the next submission waits for the oldest
        outstanding one to finish first.  The queue bound thus protects
        concurrent :meth:`submit` callers from *each other*, while a batch
        of any size is served completely — an ``overloaded`` slot here
        means genuine contention (another client, or a draining gateway),
        never batch length.
        """
        requests = list(requests)
        responses: list[dict | None] = [None] * len(requests)
        in_flight: collections.deque[tuple[int, "Future[dict]"]] = collections.deque()
        for index, request in enumerate(requests):
            while len(in_flight) >= self.config.queue_limit:
                oldest_index, oldest = in_flight.popleft()
                responses[oldest_index] = oldest.result()
            in_flight.append((index, self.submit(request)))
        for index, future in in_flight:
            responses[index] = future.result()
        return responses

    def serve_lines(self, lines) -> list[dict]:
        """The JSON-lines protocol through the gateway's admission control."""
        return self.serve_batch(parse_request_lines(lines))

    def drain(self) -> None:
        """Stop admitting and wait for every in-flight request to finish."""
        with self._lock:
            self._draining = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ServeGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()

    # ------------------------------------------------------------------

    def _run(self, request, request_id, enqueued: float) -> dict:
        """Worker-side: enforce the deadline around the engine call."""
        try:
            deadline = self.config.deadline_s
            waited = time.monotonic() - enqueued
            if deadline is not None and waited > deadline:
                response = error_response(
                    request_id,
                    ERROR_DEADLINE_EXCEEDED,
                    f"waited {waited:.3f}s in queue against a {deadline}s deadline",
                    waited,
                )
            else:
                injector = get_injector()
                if injector.active:
                    request = injector.mangle(
                        "serve.malformed", str(request_id), request
                    )
                response = self.engine.handle(request)
                elapsed = time.monotonic() - enqueued
                if deadline is not None and elapsed > deadline:
                    response = error_response(
                        request_id,
                        ERROR_DEADLINE_EXCEEDED,
                        f"completed in {elapsed:.3f}s against a {deadline}s deadline",
                        elapsed,
                    )
            with self._lock:
                if response.get("ok"):
                    self.counters.served_ok += 1
                elif response["error"]["type"] == ERROR_DEADLINE_EXCEEDED:
                    self.counters.deadline_exceeded += 1
                else:
                    self.counters.served_error += 1
            return response
        finally:
            with self._lock:
                self._pending -= 1
