"""The network-native serve tier: a TCP daemon with micro-batching.

``repro serve --listen HOST:PORT`` promotes the stdin/stdout JSON-lines
protocol to a real daemon: many concurrent connections, each a stream of
newline-delimited request objects, each answered by a newline-delimited
response object matched by ``id``.  The wire format is *identical* to the
batch path — a client that worked against ``repro serve --input`` works
against the socket unchanged.

What the daemon adds over one-process/one-client serving:

* **Adaptive micro-batching.**  Requests from *all* connections funnel
  into one coalescing loop: the first arrival opens a window of
  ``batch_window_ms``; everything arriving before it closes (or before
  ``max_batch`` is hit) is executed as one engine batch, and
  ``PredictionEngine.handle_batch`` answers the batch's feature-vector
  requests with a single vectorized ``(B, width)`` prediction per
  classifier instead of B scalar calls.  Under light traffic the window
  expires almost empty and latency stays near per-request; under load
  batches fill up and throughput scales with the vector width — the
  window adapts by doing nothing.
* **Engine replicas.**  ``replicas`` independent
  :class:`~repro.serve.engine.PredictionEngine` instances share one
  loaded :class:`~repro.registry.ModelArtifact` (immutable, zero copies)
  behind one :class:`~repro.serve.gateway.ServeGateway`; concurrent
  batches are dealt round-robin so they execute in parallel workers.
* **Admission at arrival.**  Every request is admitted or rejected the
  moment it is read, tagged with its connection's peer address —
  the gateway's queue bound and per-client fair share mean one flooding
  connection is told ``overloaded`` while everyone else keeps being
  served.
* **Hot artifact reload.**  :meth:`ServeDaemon.maybe_reload` (and the
  background watcher when ``reload_poll_s`` is set) notices a newer
  last-good artifact in the registry, loads it through the PR-4
  quarantine/fallback path, and swaps in fresh replicas between batches —
  in-flight batches finish on the engines they started with, so reload
  drops zero accepted requests.
* **Introspection.**  A ``{"healthz": true}`` request is answered inline
  (never queued) with gateway counters, batching stats, replica count,
  and the loaded artifact's path + checksum — the daemon's whole state in
  one probe.

Shutdown is drain-shaped: stop accepting connections, flush the
coalescing queue, then ``gateway.drain()`` — every admitted request gets
its response before the sockets close.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import hashlib
import json
import os
import socket
import threading
import time
from pathlib import Path

from repro.instrument.report import MeasurementRollup
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.registry.artifact import ArtifactStore, load_or_quarantine
from repro.serve.engine import (
    ERROR_INVALID_JSON,
    PredictionEngine,
    _InvalidLine,
    error_response,
)
from repro.serve.gateway import GatewayConfig, ServeGateway
from repro.serve.loader import load_serving_artifact
from repro.serve.requestlog import RequestLog, features_checksum


@dataclasses.dataclass(frozen=True)
class DaemonConfig:
    """Tunables for one :class:`ServeDaemon`.

    ``batch_window_ms`` is the coalescing window: how long the batch loop
    holds the first request of a batch open for company.  Larger windows
    trade tail latency for bigger (faster-per-request) vectorized batches;
    ``0`` disables coalescing entirely (every request is its own batch).
    With ``adaptive_window`` (the default) that value is the *ceiling*:
    a latency-aware controller shrinks the live window toward zero while
    batches close under-full (a trickle pays per-request latency, not the
    window) and grows it back under sustained queue depth (a flood earns
    its coalescing).  ``port=0`` binds an ephemeral port (the bound
    address is on :attr:`ServeDaemon.address` after start).

    The multi-process tier's knobs: ``reuse_port`` binds the listen
    socket with ``SO_REUSEPORT`` so sibling worker processes can share
    one port (the kernel shards connections); ``bind_control`` opens a
    second, ephemeral listener speaking the same protocol — the
    supervisor's direct line to one worker for health probes and peer
    updates regardless of where the kernel routes public connections;
    ``worker_id`` tags healthz and request-log records; ``request_log``
    appends one JSON line per served response (see
    :mod:`repro.serve.requestlog`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window_ms: float = 2.0
    max_batch: int = 32
    replicas: int = 2
    queue_limit: int = 256
    deadline_s: float | None = None
    reload_poll_s: float | None = None
    classifier: str = "svm"
    adaptive_window: bool = True
    reuse_port: bool = False
    bind_control: bool = False
    worker_id: int | None = None
    request_log: str | None = None
    request_log_max_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be >= 0, got {self.batch_window_ms}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")


class WindowController:
    """Latency-aware adaptation of the coalescing window, AIMD-flavoured.

    The controller watches how every batch *closed*: a batch that filled
    to ``max_batch`` — or left tokens waiting on the queue — is pressure
    (the window is earning throughput); a batch that closed well
    under-full with an empty queue behind it is idleness (the window is
    pure added latency).  Two consecutive observations of either kind
    move the window: halve toward zero on idleness (snapping to exactly
    ``0`` once it is a negligible fraction of the base, so a trickle pays
    true per-request latency), double toward the configured base on
    pressure (re-entering from zero at ``base/8``).  The base is a hard
    ceiling — the operator's ``batch_window_ms`` still bounds tail
    latency.

    The two-observation hysteresis is what makes the controller stable:
    a single odd-sized batch (the first of a burst, the last of a drain)
    never whipsaws the window.
    """

    #: Consecutive same-direction observations before the window moves.
    HYSTERESIS = 2
    #: Shrinking below ``base / SNAP_DENOMINATOR`` snaps the window to 0.
    SNAP_DENOMINATOR = 64.0
    #: A window growing from 0 re-enters at ``base / REENTRY_DENOMINATOR``.
    REENTRY_DENOMINATOR = 8.0

    def __init__(self, base_ms: float, max_batch: int):
        self.base_ms = base_ms
        self.max_batch = max_batch
        self.window_ms = base_ms
        self.shrinks = 0
        self.grows = 0
        self._pressure_streak = 0
        self._idle_streak = 0
        # Nothing to adapt when coalescing is off by construction.
        self.enabled = base_ms > 0 and max_batch > 1

    def observe(self, batch_size: int, queue_depth: int) -> float:
        """Account one closed batch; returns the window for the next."""
        if not self.enabled:
            return self.window_ms
        if batch_size >= self.max_batch or queue_depth > 0:
            self._pressure_streak += 1
            self._idle_streak = 0
            if self._pressure_streak >= self.HYSTERESIS and self.window_ms < self.base_ms:
                self.window_ms = min(
                    self.base_ms,
                    max(self.window_ms * 2.0, self.base_ms / self.REENTRY_DENOMINATOR),
                )
                self.grows += 1
        elif batch_size <= max(1, self.max_batch // 4):
            self._idle_streak += 1
            self._pressure_streak = 0
            if self._idle_streak >= self.HYSTERESIS and self.window_ms > 0.0:
                shrunk = self.window_ms / 2.0
                self.window_ms = (
                    0.0 if shrunk < self.base_ms / self.SNAP_DENOMINATOR else shrunk
                )
                self.shrinks += 1
        else:
            # Mid-sized batches: the window is pulling its weight; hold.
            self._pressure_streak = 0
            self._idle_streak = 0
        return self.window_ms

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "current_window_ms": round(self.window_ms, 4),
            "base_window_ms": self.base_ms,
            "shrinks": self.shrinks,
            "grows": self.grows,
        }


def merge_worker_health(workers: list[dict]) -> dict:
    """Merge per-worker ``healthz`` payloads into one cluster view.

    ``workers`` entries are either a worker's ``healthz`` dict (tagged
    with its ``worker`` identity) or an ``{"alive": False, ...}`` stub
    for a worker that could not be probed.  The merged gateway counters
    are plain sums; ``balanced`` holds exactly when every live worker's
    own counters balance — which, summed, is the cluster-wide
    admitted == ok + error + deadline identity.
    """
    counter_keys = (
        "admitted", "served_ok", "served_error", "overloaded", "deadline_exceeded"
    )
    merged_counters = dict.fromkeys(counter_keys, 0)
    batching = {"batches": 0, "batched_requests": 0, "max_batch": 0}
    request_log_records = 0
    request_log_bytes = 0
    alive = 0
    balanced = True
    per_worker = []
    for health in workers:
        if not health.get("alive", True):
            balanced = False
            per_worker.append(health)
            continue
        alive += 1
        gateway = health.get("gateway", {})
        for key in counter_keys:
            merged_counters[key] += gateway.get(key, 0)
        worker_balanced = gateway.get("admitted", 0) == (
            gateway.get("served_ok", 0)
            + gateway.get("served_error", 0)
            + gateway.get("deadline_exceeded", 0)
        )
        balanced = balanced and worker_balanced
        stats = health.get("batching", {})
        batching["batches"] += stats.get("batches", 0)
        batching["batched_requests"] += stats.get("batched_requests", 0)
        batching["max_batch"] = max(batching["max_batch"], stats.get("max_batch", 0))
        log_stats = health.get("request_log") or {}
        request_log_records += log_stats.get("records", 0)
        request_log_bytes += log_stats.get("bytes_written", 0)
        per_worker.append(
            {
                "worker": health.get("worker"),
                "alive": True,
                "balanced": worker_balanced,
                "gateway": gateway,
                "batching": stats,
                "uptime_s": health.get("uptime_s"),
            }
        )
    return {
        "aggregate": True,
        "cluster_size": len(workers),
        "workers_alive": alive,
        "gateway": merged_counters,
        "batching": batching,
        "request_log_records": request_log_records,
        "request_log_bytes": request_log_bytes,
        "balanced": balanced,
        "workers": per_worker,
    }


def probe_healthz(host: str, port: int, timeout: float = 5.0) -> dict:
    """One blocking healthz round trip; raises ``OSError`` on transport
    failure (callers decide whether a dead worker is an error)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        stream.write(json.dumps({"healthz": True}) + "\n")
        stream.flush()
        return json.loads(stream.readline())["healthz"]


def _file_checksum(path: Path) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


class ServeDaemon:
    """One artifact, N engine replicas, one socket, shared micro-batching.

    Construct, then either drive the asyncio lifecycle directly
    (``await start()`` / ``await stop()`` on a running loop) or use
    :class:`BackgroundDaemon` / :meth:`run` which own a loop for you.
    """

    def __init__(
        self,
        model_path: str | Path,
        config: DaemonConfig | None = None,
        store: ArtifactStore | None = None,
        machine: MachineModel = ITANIUM2,
    ):
        self.config = config or DaemonConfig()
        self._machine = machine
        self._store = store if store is not None else ArtifactStore()
        self.loaded = load_serving_artifact(model_path, store=self._store, machine=machine)
        self.checksum = _file_checksum(self.loaded.path)
        self._artifact_mtime = self.loaded.path.stat().st_mtime
        self.rollup = MeasurementRollup()
        self.gateway = ServeGateway(
            self._build_replicas(self.loaded.artifact),
            GatewayConfig(
                max_workers=self.config.replicas,
                queue_limit=self.config.queue_limit,
                deadline_s=self.config.deadline_s,
            ),
        )
        self.reloads = 0
        self._reload_lock = threading.Lock()
        self._started = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        self._control_server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._batch_task: asyncio.Task | None = None
        self._watch_task: asyncio.Task | None = None
        self._connections: set = set()
        self._deliveries: set = set()
        self._closing = False
        self.address: tuple[str, int] | None = None
        self.control_address: tuple[str, int] | None = None
        self.window = WindowController(
            self.config.batch_window_ms if self.config.adaptive_window else 0.0,
            self.config.max_batch,
        )
        if not self.config.adaptive_window:
            # Controller disabled: run the configured window verbatim.
            self.window.window_ms = self.config.batch_window_ms
        self.gateway.batch_stats.window_ms = self.window.window_ms
        self.request_log = (
            RequestLog(
                self.config.request_log,
                worker=self.config.worker_id,
                max_bytes=self.config.request_log_max_bytes,
            )
            if self.config.request_log
            else None
        )
        #: Sibling workers for aggregated healthz: (worker_id, host, port)
        #: control addresses, installed by the supervisor's peer broadcast.
        self._peers: tuple[tuple[int, str, int], ...] = ()

    def _build_replicas(self, artifact) -> tuple[PredictionEngine, ...]:
        """N engines over one immutable artifact — shared weights, shared
        rollup, no copies."""
        return tuple(
            PredictionEngine(artifact, classifier=self.config.classifier, rollup=self.rollup)
            for _ in range(self.config.replicas)
        )

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Bind the socket(s) and start the batch loop (and watcher, if any).

        With ``reuse_port`` the public listener joins an ``SO_REUSEPORT``
        group — sibling worker processes bind the same ``host:port`` and
        the kernel shards incoming connections across them.  With
        ``bind_control`` a second, always-ephemeral listener serves the
        same protocol for direct per-worker probes.
        """
        self._queue = asyncio.Queue()
        self._batch_task = asyncio.ensure_future(self._batch_loop())
        if self.config.reload_poll_s is not None:
            self._watch_task = asyncio.ensure_future(self._watch_registry())
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            reuse_port=self.config.reuse_port or None,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        if self.config.bind_control:
            self._control_server = await asyncio.start_server(
                self._handle_connection, self.config.host, 0
            )
            control_name = self._control_server.sockets[0].getsockname()
            self.control_address = (control_name[0], control_name[1])

    async def stop(self) -> None:
        """Drain-shaped shutdown: no request admitted before the sockets
        closed goes unanswered."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
        if self._watch_task is not None:
            self._watch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watch_task
        if self._batch_task is not None:
            # Stop admitting *before* the sentinel goes on the queue.  Both
            # the flag-then-sentinel here and a handler's check-then-enqueue
            # run without yielding to the loop, so no handler can slip a
            # token behind the sentinel: it either enqueued first (the loop
            # executes it) or it sees ``_closing`` and rejects the read with
            # a typed error.  The sentinel itself queues behind any
            # still-coalescing tokens, so the loop executes every admitted
            # request before exiting.
            self._closing = True
            self._queue.put_nowait(None)
            await self._batch_task
        await asyncio.get_event_loop().run_in_executor(None, self.gateway.drain)
        # Every future is resolved now; let in-flight response writes land,
        # then cancel handlers still parked on an idle connection's readline.
        if self._deliveries:
            await asyncio.gather(*tuple(self._deliveries), return_exceptions=True)
        for task in tuple(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*tuple(self._connections), return_exceptions=True)
        if self.request_log is not None:
            # Every response has been delivered (and therefore recorded);
            # sealing here flushes the writer's backlog to disk.
            await asyncio.get_event_loop().run_in_executor(
                None, self.request_log.close
            )

    # ------------------------------------------------------------------
    # hot reload

    def maybe_reload(self) -> bool:
        """Swap in the registry's newest artifact if it is newer than ours.

        Thread-safe and cheap when nothing changed (one registry scan +
        stat).  On reload the gateway's replicas are replaced atomically:
        batches already executing keep their engines, every later batch
        runs the new model.  Returns whether a swap happened.
        """
        with self._reload_lock:
            newest: tuple[float, Path] | None = None
            for path in self._store.entries():
                try:
                    mtime = path.stat().st_mtime
                except FileNotFoundError:
                    continue
                if newest is None or mtime > newest[0]:
                    newest = (mtime, path)
            if newest is None:
                return False
            mtime, path = newest
            if path == self.loaded.path and mtime <= self._artifact_mtime:
                return False
            if mtime < self._artifact_mtime:
                return False
            try:
                # Through the quarantine path: a corrupt "newer" artifact
                # is renamed aside and we keep serving what we have.
                artifact = load_or_quarantine(path, machine=self._machine)
            except Exception:
                return False
            checksum = _file_checksum(path)
            if checksum == self.checksum:
                # Re-saved identical bytes (deterministic serialization):
                # remember the newer mtime, skip the swap.
                self._artifact_mtime = mtime
                return False
            self.gateway.swap_replicas(self._build_replicas(artifact))
            self.loaded = dataclasses.replace(
                self.loaded, artifact=artifact, path=path, fallback=False
            )
            self.checksum = checksum
            self._artifact_mtime = mtime
            self.reloads += 1
            return True

    async def _watch_registry(self) -> None:
        while True:
            await asyncio.sleep(self.config.reload_poll_s)
            await asyncio.get_event_loop().run_in_executor(None, self.maybe_reload)

    # ------------------------------------------------------------------
    # introspection

    def healthz(self) -> dict:
        counters = self.gateway.counters
        stats = self.gateway.batch_stats
        return {
            "ok": True,
            "healthz": {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "worker": self.config.worker_id,
                "pid": os.getpid(),
                "artifact": {
                    "path": str(self.loaded.path),
                    "checksum": self.checksum,
                    "fallback": self.loaded.fallback,
                    "reloads": self.reloads,
                    # Per-family presence: which classifier names this
                    # artifact can serve (all five under schema v2).
                    "families": {
                        name: self.loaded.artifact.heuristic(name) is not None
                        for name in self.loaded.artifact.families
                    },
                },
                "gateway": dataclasses.asdict(counters),
                "batching": {
                    "batches": stats.batches,
                    "batched_requests": stats.batched_requests,
                    "max_batch": stats.max_batch,
                    "mean_batch": round(stats.mean_batch(), 3),
                    "window_ms": self.config.batch_window_ms,
                    "max_batch_limit": self.config.max_batch,
                    "adaptive": self.window.stats(),
                },
                "replicas": len(self.gateway.replicas),
                "cluster_peers": len(self._peers),
                "request_log": (
                    self.request_log.stats() if self.request_log is not None else None
                ),
            },
        }

    def set_peers(self, peers) -> int:
        """Install the sibling-worker control addresses used by
        aggregated healthz; returns how many are now known.  The
        supervisor broadcasts this after startup and after every worker
        restart (a restarted worker binds a fresh control port)."""
        self._peers = tuple(
            (int(worker_id), str(host), int(port)) for worker_id, host, port in peers
        )
        return len(self._peers)

    def _gather_cluster_health(self) -> dict:
        """Blocking fan-out: probe every peer's control listener, merge.

        Runs on an executor thread so the event loop keeps accepting
        while probes are in flight.  This worker answers for itself
        locally (no self-connection); a peer that cannot be reached is
        reported ``alive: False`` rather than hiding the hole.
        """
        own = self.healthz()["healthz"]
        if not self._peers:
            return merge_worker_health([own])
        workers = []
        for worker_id, host, port in self._peers:
            if worker_id == self.config.worker_id:
                workers.append(own)
                continue
            try:
                workers.append(probe_healthz(host, port))
            except (OSError, ValueError, KeyError):
                workers.append({"worker": worker_id, "alive": False})
        return merge_worker_health(workers)

    async def aggregate_healthz(self) -> dict:
        merged = await asyncio.get_event_loop().run_in_executor(
            None, self._gather_cluster_health
        )
        return {"ok": True, "healthz": merged}

    def _log_entry(self, token, response: dict) -> dict:
        """One served-request log record (see :mod:`repro.serve.requestlog`
        for the field contract)."""
        request = token.request if isinstance(token.request, dict) else {}
        ok = bool(response.get("ok"))
        return {
            "ts": round(time.time(), 6),
            "worker": self.config.worker_id,
            "id": token.request_id,
            "classifier": response.get(
                "classifier", request.get("classifier", self.config.classifier)
            ),
            "features_sha256": features_checksum(request),
            # The raw payload makes the log replayable: the lifecycle's
            # drift scan and canary gate re-predict exactly what clients
            # sent, not a hash of it.
            "features": request.get("features"),
            "source": request.get("source"),
            "ok": ok,
            "factor": response.get("factor"),
            "confidence": response.get("confidence"),
            "error_type": None if ok else response.get("error", {}).get("type"),
            "latency_ms": round((time.monotonic() - token.enqueued) * 1e3, 3),
        }

    # ------------------------------------------------------------------
    # the coalescing loop

    async def _batch_loop(self) -> None:
        """Pull admitted tokens off the shared queue; coalesce arrivals
        within ``batch_window_ms`` (up to ``max_batch``) into one gateway
        batch.  A ``None`` sentinel — queued behind all remaining tokens at
        shutdown — ends the loop once everything before it has executed.

        The coalescing window is re-read from the latency-aware
        :class:`WindowController` for every batch: a trickle shrinks it
        toward zero (responses leave as fast as the engine answers), a
        flood grows it back toward the configured ceiling (batches fill
        and the vectorized path earns its keep)."""
        loop = asyncio.get_event_loop()
        while True:
            token = await self._queue.get()
            if token is None:
                self._flush_queue([])
                return
            batch = [token]
            deadline = loop.time() + self.window.window_ms / 1e3
            closing = False
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Window expired: sweep whatever already arrived, then go.
                    try:
                        while len(batch) < self.config.max_batch:
                            extra = self._queue.get_nowait()
                            if extra is None:
                                closing = True
                                break
                            batch.append(extra)
                    except asyncio.QueueEmpty:
                        pass
                    break
                try:
                    extra = await asyncio.wait_for(self._queue.get(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
                if extra is None:
                    closing = True
                    break
                batch.append(extra)
            if closing:
                self._flush_queue(batch)
                return
            self.gateway.execute_batch(batch)
            self.window.observe(len(batch), self._queue.qsize())
            stats = self.gateway.batch_stats
            stats.window_ms = self.window.window_ms
            stats.window_shrinks = self.window.shrinks
            stats.window_grows = self.window.grows

    def _flush_queue(self, batch: list) -> None:
        """Sentinel seen: execute the final batch plus any tokens still on
        the queue, so nothing admitted is left with an unresolved future —
        belt-and-braces behind the ``_closing`` admission gate."""
        while True:
            try:
                extra = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if extra is not None:
                batch.append(extra)
        for start in range(0, len(batch), self.config.max_batch):
            self.gateway.execute_batch(batch[start : start + self.config.max_batch])

    # ------------------------------------------------------------------
    # per-connection protocol

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        write_lock = asyncio.Lock()
        deliveries: set[asyncio.Task] = set()
        task = asyncio.current_task()
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

        async def write_response(response: dict) -> None:
            async with write_lock:
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()

        async def deliver(future, token=None) -> None:
            response = await asyncio.wrap_future(future)
            if self.request_log is not None and token is not None:
                # Enqueue-only (the log's writer thread does the I/O):
                # the response is not delayed by logging it.
                self.request_log.record(self._log_entry(token, response))
            with contextlib.suppress(ConnectionError):
                await write_response(response)

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    request = json.loads(text)
                except json.JSONDecodeError as error:
                    request = _InvalidLine(str(error))
                if isinstance(request, dict) and request.get("healthz"):
                    if request.get("aggregate"):
                        merged = await self.aggregate_healthz()
                        await write_response({**merged, "id": request.get("id")})
                    else:
                        await write_response(
                            {**self.healthz(), "id": request.get("id")}
                        )
                    continue
                if isinstance(request, dict) and "cluster_peers" in request:
                    # Supervisor control-plane: install sibling control
                    # addresses for aggregated healthz.  Answered inline,
                    # never queued — peer updates must land even while the
                    # serve queue is saturated.
                    try:
                        count = self.set_peers(request["cluster_peers"])
                    except (TypeError, ValueError) as error:
                        await write_response(
                            error_response(
                                request.get("id"),
                                ERROR_INVALID_JSON,
                                f"malformed cluster_peers: {error}",
                            )
                        )
                        continue
                    await write_response(
                        {"ok": True, "id": request.get("id"), "peers": count}
                    )
                    continue
                if self._closing:
                    # Shutdown has begun: the batch loop is (or is about to
                    # be) gone, so admitting would strand a token with an
                    # unresolved future behind the sentinel.  Refuse with a
                    # typed error instead — the drain guarantee covers what
                    # was admitted, not what arrives mid-shutdown.
                    await write_response(
                        self.gateway.reject(
                            request, "daemon is shutting down; retry elsewhere"
                        )
                    )
                    continue
                token = self.gateway.admit(request, client=client)
                if token.admitted:
                    await self._queue.put(token)
                # Responses are written in completion order, matched to
                # requests by id — a pipelining client must tag requests.
                delivery = asyncio.ensure_future(deliver(token.future, token))
                for registry in (deliveries, self._deliveries):
                    registry.add(delivery)
                    delivery.add_done_callback(registry.discard)
            if deliveries:
                await asyncio.gather(*deliveries, return_exceptions=True)
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            # Shutdown cancels handlers parked on readline after every
            # response has been written; the connection just closes.
            pass
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # blocking entry points

    def run(self) -> None:
        """Serve until interrupted (the CLI's ``--listen`` path).

        SIGINT/SIGTERM trigger the drain-shaped shutdown: stop accepting,
        answer everything admitted, then exit."""
        import signal

        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(signum, loop.stop)
            host, port = self.address
            print(f"daemon listening on {host}:{port}", flush=True)
            try:
                loop.run_forever()
            except KeyboardInterrupt:
                pass
            loop.run_until_complete(self.stop())
        finally:
            asyncio.set_event_loop(None)
            loop.close()


class BackgroundDaemon:
    """Run a :class:`ServeDaemon` on a background thread (tests, bench).

    ``with BackgroundDaemon(daemon) as d:`` yields once the socket is
    bound (``d.address`` is live); exit performs the full drain-shaped
    shutdown before returning.
    """

    def __init__(self, daemon: ServeDaemon):
        self.daemon = daemon
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> ServeDaemon:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self.daemon

    def _serve(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.daemon.start())
        except BaseException as error:  # surface bind failures to __enter__
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self.daemon.stop())
        self._loop.close()

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._startup_error is None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join()
