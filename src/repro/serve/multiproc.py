"""The shared-nothing multi-process serve tier: one port, N interpreters.

PR 7's daemon is one Python process: the socket loop and every replica
prediction contend on a single GIL.  This module escapes it the way
production Python services do — by not sharing anything.  ``repro serve
--listen HOST:PORT --workers N`` runs a :class:`ServeCluster`: a parent
*supervisor* process that forks N completely independent
:class:`~repro.serve.daemon.ServeDaemon` worker processes, each with its
own interpreter, its own loaded artifact, its own replicas, batch loop,
window controller, and hot-reload watcher.  Two sharding modes, chosen
automatically:

* **``reuseport``** (Linux and modern BSDs): every worker binds the same
  ``host:port`` with ``SO_REUSEPORT`` and the *kernel* shards incoming
  connections across the listening sockets — no user-space balancer, no
  shared accept lock, no extra hop.  The supervisor holds a bound (never
  listening) reservation socket in the same group so ``port 0`` resolves
  to one concrete port before any worker starts, and the port stays
  owned across worker restarts.
* **``balancer``** (fallback — macOS semantics, old kernels, or forced
  with ``REPRO_NO_REUSEPORT=1``): workers bind ephemeral ports and the
  supervisor runs a tiny asyncio front-end on the public port that deals
  accepted connections round-robin over the live workers and pumps bytes
  both ways.  A worker that refuses a connection (just crashed, not yet
  restarted) is skipped — the dealer retries the next worker, so a
  single death never surfaces as a refused public connection.

The supervisor also owns the *lifecycle*:

* **Crash restarts with backoff.**  A monitor thread watches worker
  processes; a dead worker is respawned after an exponentially growing
  delay (reset once a worker proves stable), re-registered with the
  balancer, and announced to its siblings.
* **Signal fan-out.**  SIGINT/SIGTERM to the supervisor forwards SIGTERM
  to every worker, each of which performs the daemon's drain-shaped
  shutdown (every admitted request answered); the supervisor waits for
  all of them before exiting.
* **Aggregated healthz.**  Each worker carries a *control* listener (an
  ephemeral second socket speaking the same protocol).  The supervisor
  broadcasts the control addresses to every worker, so a
  ``{"healthz": true, "aggregate": true}`` probe against *any* worker —
  wherever the kernel routed the connection — fans out to all siblings
  and answers with merged counters.  :meth:`ServeCluster.healthz` is the
  same merge done supervisor-side.

Workers are spawned (not forked) so no parent thread, lock, or event
loop leaks into a child; everything a worker needs travels as picklable
arguments.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import socket
import threading
import time
from pathlib import Path

from repro.serve.daemon import (
    DaemonConfig,
    ServeDaemon,
    merge_worker_health,
    probe_healthz,
)

#: Set (to anything non-empty except ``0``) to force the balancer mode
#: even where ``SO_REUSEPORT`` works — the escape hatch for kernels whose
#: reuseport sharding misbehaves, and the tests' lever for exercising the
#: fallback path on Linux.
NO_REUSEPORT_ENV = "REPRO_NO_REUSEPORT"


def reuseport_available() -> bool:
    """Whether kernel-level connection sharding can be used here.

    Checks the env override first, then the constant, then performs an
    actual bind probe — some platforms define ``SO_REUSEPORT`` and then
    refuse it at setsockopt/bind time.
    """
    if os.environ.get(NO_REUSEPORT_ENV, "").strip() not in ("", "0"):
        return False
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind(("127.0.0.1", 0))
    except OSError:
        return False
    finally:
        probe.close()
    return True


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Tunables for one :class:`ServeCluster`.

    ``daemon`` is the per-worker template: its ``host``/``port``/
    ``reuse_port``/``bind_control``/``worker_id`` fields are overridden
    per worker; everything else (window, max_batch, replicas, queue
    limit, deadline, reload poll, classifier, request log) applies to
    every worker identically.  Restart backoff doubles from
    ``restart_backoff_s`` to ``restart_backoff_max_s`` across
    consecutive failures and resets once a worker survives
    ``stable_after_s``.
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    daemon: DaemonConfig = dataclasses.field(default_factory=DaemonConfig)
    restart_backoff_s: float = 0.1
    restart_backoff_max_s: float = 2.0
    stable_after_s: float = 10.0
    ready_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.restart_backoff_s <= 0:
            raise ValueError(
                f"restart_backoff_s must be positive, got {self.restart_backoff_s}"
            )


@dataclasses.dataclass
class WorkerHandle:
    """One live worker as the supervisor sees it."""

    worker_id: int
    process: multiprocessing.Process
    pid: int
    address: tuple[str, int]
    control_address: tuple[str, int]
    started: float
    restarts: int = 0
    backoff_s: float = 0.1
    restart_at: float | None = None

    def alive(self) -> bool:
        return self.process.is_alive()


def _worker_main(model_path, config, store_root, ready):  # pragma: no cover
    """Worker-process entry point (runs in the spawned child).

    Builds the daemon, binds its sockets, reports the bound addresses
    back through ``ready``, then serves until SIGTERM/SIGINT triggers the
    drain-shaped shutdown.  Excluded from coverage: it executes in a
    separate interpreter the parent's tracer cannot see.
    """
    import asyncio
    import contextlib

    from repro.registry.artifact import ArtifactStore

    store = ArtifactStore(store_root) if store_root is not None else ArtifactStore()
    try:
        daemon = ServeDaemon(model_path, config, store=store)
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.run_until_complete(daemon.start())
    except BaseException as error:
        with contextlib.suppress(OSError, ValueError):
            ready.send({"worker": config.worker_id, "error": repr(error)})
        raise
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, loop.stop)
    ready.send(
        {
            "worker": config.worker_id,
            "pid": os.getpid(),
            "address": list(daemon.address),
            "control": list(daemon.control_address),
        }
    )
    ready.close()
    try:
        loop.run_forever()
    except KeyboardInterrupt:
        pass
    finally:
        loop.run_until_complete(daemon.stop())
        loop.close()


class WorkerStartupError(RuntimeError):
    """A worker died, reported a bind failure, or missed its ready
    deadline during spawn."""


class _Balancer:
    """The fallback front-end: accept on the public port, deal round-robin.

    A thin byte pump — it never parses the protocol, so it adds one local
    hop and nothing else.  Worker selection happens per *connection* (the
    daemon protocol is connection-oriented); a refused worker is skipped
    and the next is tried, so the rotation heals around a crashed worker
    before the supervisor has even noticed the death.
    """

    def __init__(self, host: str, port: int, addresses):
        self._host = host
        self._port = port
        self._addresses = addresses  # callable -> list[tuple[str, int]]
        self._next = 0
        self._loop = None
        self._server = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._tasks: set = set()
        self.address: tuple[str, int] | None = None
        self.connections = 0
        self.connect_failures = 0

    # ------------------------------------------------------------------

    def start(self) -> None:
        import asyncio

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._serve, name="serve-balancer", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error

    def _serve(self) -> None:
        import asyncio

        asyncio.set_event_loop(self._loop)
        try:
            self._server = self._loop.run_until_complete(
                asyncio.start_server(self._handle, self._host, self._port)
            )
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._ready.set()
        self._loop.run_forever()
        # run_forever returned: cancel connections still pumping, drain
        # pending callbacks, then close.
        for task in tuple(self._tasks):
            task.cancel()
        if self._tasks:
            self._loop.run_until_complete(
                asyncio.gather(*tuple(self._tasks), return_exceptions=True)
            )
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    async def _handle(self, reader, writer) -> None:
        import asyncio
        import contextlib

        # The loop holds only weak task references: anchor the handler so
        # a suspended connection pump cannot be garbage-collected alive.
        task = asyncio.current_task()
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        upstream = None
        addresses = list(self._addresses())
        offset = self._next
        self._next += 1
        for attempt in range(len(addresses)):
            target = addresses[(offset + attempt) % len(addresses)]
            try:
                upstream = await asyncio.open_connection(*target)
                break
            except OSError:
                # Worker down (crashed, restarting): deal to the next one.
                self.connect_failures += 1
                continue
        if upstream is None:
            # No live worker at all: refuse by closing — the client sees
            # a transport error, exactly as with no daemon bound.
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            return
        self.connections += 1
        up_reader, up_writer = upstream
        try:
            await asyncio.gather(
                self._pump(reader, up_writer),
                self._pump(up_reader, writer),
                return_exceptions=True,
            )
        except asyncio.CancelledError:
            # Balancer shutdown cancelled a still-pumping connection:
            # just drop both ends below.
            pass
        for stream in (up_writer, writer):
            with contextlib.suppress(ConnectionError, OSError):
                stream.close()
                with contextlib.suppress(asyncio.CancelledError):
                    await stream.wait_closed()

    @staticmethod
    async def _pump(reader, writer) -> None:
        import contextlib

        try:
            while True:
                data = await reader.read(1 << 16)
                if not data:
                    break
                writer.write(data)
                await writer.drain()
            # Forward the half-close so a worker sees client EOF (and vice
            # versa) instead of a wedged-open stream.
            if writer.can_write_eof():
                with contextlib.suppress(OSError):
                    writer.write_eof()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------

    def stop_accepting(self) -> None:
        """Close the public listener; connections already dealt keep
        pumping (the drain path: workers still answer them)."""
        if self._loop is None or self._server is None:
            return
        self._loop.call_soon_threadsafe(self._server.close)

    def stop(self) -> None:
        if self._loop is not None and self._startup_error is None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join()


class ServeCluster:
    """Supervisor for N shared-nothing daemon workers on one port.

    Usable as a context manager (``with ServeCluster(...) as cluster:``
    yields with every worker ready and ``cluster.address`` live) or via
    :meth:`run` for the CLI's serve-until-signalled path.
    """

    def __init__(
        self,
        model_path,
        config: ClusterConfig | None = None,
        store_root=None,
    ):
        self.config = config or ClusterConfig()
        self._model_path = str(model_path)
        self._store_root = str(store_root) if store_root is not None else None
        self._ctx = multiprocessing.get_context("spawn")
        self.mode: str | None = None
        self.address: tuple[str, int] | None = None
        self.restarts = 0
        self._reservation: socket.socket | None = None
        self._balancer: _Balancer | None = None
        self._workers: list[WorkerHandle] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False
        #: Lifecycle announcements ("worker 2 pid 123 restarted ...");
        #: the CLI points this at print, tests at a list.
        self.on_event = None

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Choose the sharding mode, spawn every worker, start the
        balancer (if needed) and the restart monitor."""
        if self._started:
            raise RuntimeError("cluster already started")
        self.mode = "reuseport" if reuseport_available() else "balancer"
        host, port = self.config.host, self.config.port
        if self.mode == "reuseport":
            # Reserve the concrete port (resolving port 0 now) with a
            # bound, never-listening socket in the reuseport group: the
            # kernel only deals connections to *listening* sockets, so
            # the reservation receives nothing but keeps the port ours
            # across worker restarts.
            family = socket.AF_INET6 if ":" in host else socket.AF_INET
            self._reservation = socket.socket(family, socket.SOCK_STREAM)
            self._reservation.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            self._reservation.bind((host, port))
            port = self._reservation.getsockname()[1]
            self.address = (host, port)
        spawning = [
            self._spawn(worker_id, port) for worker_id in range(self.config.workers)
        ]
        try:
            self._workers = [self._await_ready(*pending) for pending in spawning]
        except Exception:
            for process, _ in spawning:
                if process.is_alive():
                    process.terminate()
            if self._reservation is not None:
                self._reservation.close()
            raise
        if self.mode == "balancer":
            self._balancer = _Balancer(host, port, self._worker_addresses)
            try:
                self._balancer.start()
            except Exception:
                self._signal_workers(signal.SIGTERM)
                raise
            self.address = self._balancer.address
        self._broadcast_peers()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._started = True
        self._monitor.start()

    def stop(self) -> None:
        """Drain-shaped cluster shutdown: stop restarts, stop accepting,
        let every worker answer what it admitted, then reap them all."""
        if not self._started:
            return
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join()
        if self._balancer is not None:
            # New connections refused from here on; dealt connections
            # keep flowing to the workers until those drain.
            self._balancer.stop_accepting()
        self._signal_workers(signal.SIGTERM)
        deadline = time.monotonic() + 60.0
        for handle in self._workers:
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        if self._balancer is not None:
            self._balancer.stop()
        if self._reservation is not None:
            self._reservation.close()
        self._started = False

    def __enter__(self) -> "ServeCluster":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def run(self) -> None:
        """Serve until SIGINT/SIGTERM (the CLI's ``--workers N`` path)."""
        finished = threading.Event()
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, lambda *_: finished.set())
        try:
            self.start()
            host, port = self.address
            self._announce(
                f"daemon listening on {host}:{port} "
                f"workers={self.config.workers} mode={self.mode}"
            )
            for handle in self._workers:
                self._announce(
                    f"worker {handle.worker_id} pid {handle.pid} ready on "
                    f"{handle.address[0]}:{handle.address[1]}"
                )
            finished.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.stop()

    # ------------------------------------------------------------------
    # introspection

    @property
    def workers(self) -> list[WorkerHandle]:
        with self._lock:
            return list(self._workers)

    def healthz(self) -> dict:
        """The supervisor-side aggregated health: probe every worker's
        control listener, merge counters, report the dead by id."""
        merged = merge_worker_health(
            [self._probe_worker(handle) for handle in self.workers]
        )
        merged["mode"] = self.mode
        merged["restarts"] = self.restarts
        return merged

    def summary(self) -> str:
        health = self.healthz()
        gateway = health["gateway"]
        return (
            f"cluster[{self.mode}]: {health['workers_alive']}/"
            f"{health['cluster_size']} worker(s), {self.restarts} restart(s), "
            f"{gateway['admitted']} admitted, {gateway['served_ok']} ok, "
            f"{gateway['served_error']} error(s), "
            f"{gateway['overloaded']} overloaded, "
            f"balanced={health['balanced']}"
        )

    @staticmethod
    def _probe_worker(handle: WorkerHandle) -> dict:
        try:
            return probe_healthz(*handle.control_address)
        except (OSError, ValueError, KeyError):
            return {"worker": handle.worker_id, "alive": False}

    # ------------------------------------------------------------------
    # spawning

    def _daemon_config(self, worker_id: int, port: int) -> DaemonConfig:
        return dataclasses.replace(
            self.config.daemon,
            host=self.config.host,
            port=port if self.mode == "reuseport" else 0,
            reuse_port=self.mode == "reuseport",
            bind_control=True,
            worker_id=worker_id,
        )

    def _spawn(self, worker_id: int, port: int):
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._model_path,
                self._daemon_config(worker_id, port),
                self._store_root,
                child_conn,
            ),
            name=f"serve-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    def _await_ready(self, process, conn) -> WorkerHandle:
        deadline = time.monotonic() + self.config.ready_timeout_s
        try:
            while not conn.poll(0.05):
                if not process.is_alive():
                    raise WorkerStartupError(
                        f"worker process {process.pid} died before ready "
                        f"(exitcode {process.exitcode})"
                    )
                if time.monotonic() > deadline:
                    process.terminate()
                    raise WorkerStartupError(
                        f"worker process {process.pid} missed the "
                        f"{self.config.ready_timeout_s}s ready deadline"
                    )
            try:
                info = conn.recv()
            except EOFError:
                process.join(timeout=5.0)
                raise WorkerStartupError(
                    f"worker process {process.pid} closed its ready pipe "
                    f"without reporting (exitcode {process.exitcode})"
                ) from None
        finally:
            conn.close()
        if "error" in info:
            process.join(timeout=5.0)
            raise WorkerStartupError(
                f"worker {info.get('worker')} failed to start: {info['error']}"
            )
        address = (
            self.address
            if self.mode == "reuseport"
            else (info["address"][0], info["address"][1])
        )
        return WorkerHandle(
            worker_id=info["worker"],
            process=process,
            pid=info["pid"],
            address=address,
            control_address=(info["control"][0], info["control"][1]),
            started=time.monotonic(),
            backoff_s=self.config.restart_backoff_s,
        )

    # ------------------------------------------------------------------
    # control plane

    def _worker_addresses(self) -> list:
        """Live workers' client-facing addresses (the balancer's deck)."""
        with self._lock:
            return [
                handle.address for handle in self._workers if handle.alive()
            ]

    def _broadcast_peers(self) -> None:
        """Tell every live worker where its siblings' control listeners
        are, enabling wire-level aggregated healthz from any worker."""
        import json as json_mod

        with self._lock:
            peers = [
                [handle.worker_id, *handle.control_address]
                for handle in self._workers
                if handle.alive()
            ]
            targets = [
                handle.control_address for handle in self._workers if handle.alive()
            ]
        payload = (json_mod.dumps({"cluster_peers": peers}) + "\n").encode("utf-8")
        for target in targets:
            try:
                with socket.create_connection(target, timeout=5) as sock:
                    sock.sendall(payload)
                    stream = sock.makefile("r", encoding="utf-8", newline="\n")
                    stream.readline()
            except OSError:
                # Died between the snapshot and the send: the monitor will
                # respawn it and re-broadcast.
                continue

    def _signal_workers(self, signum: int) -> None:
        for handle in self.workers:
            if handle.alive():
                try:
                    os.kill(handle.pid, signum)
                except (ProcessLookupError, PermissionError):
                    continue

    def _announce(self, message: str) -> None:
        if self.on_event is not None:
            self.on_event(message)

    # ------------------------------------------------------------------
    # the restart monitor

    def _monitor_loop(self) -> None:
        """Watch workers; respawn the dead after their backoff.

        Exponential backoff per slot (doubling to the cap on consecutive
        failures, reset after ``stable_after_s`` of uptime) keeps a
        crash-looping model from melting the host while a one-off kill is
        healed in ~``restart_backoff_s``.
        """
        while not self._stopping.wait(0.05):
            now = time.monotonic()
            for index in range(len(self._workers)):
                with self._lock:
                    handle = self._workers[index]
                if handle.alive():
                    if (
                        handle.restart_at is None
                        and now - handle.started > self.config.stable_after_s
                        and handle.backoff_s != self.config.restart_backoff_s
                    ):
                        handle.backoff_s = self.config.restart_backoff_s
                    continue
                if handle.restart_at is None:
                    # Just noticed the death: schedule the respawn.  The
                    # balancer stops dealing to it via _worker_addresses
                    # (alive() is False) the moment we get here.
                    handle.restart_at = now + handle.backoff_s
                    self._announce(
                        f"worker {handle.worker_id} pid {handle.pid} died "
                        f"(exitcode {handle.process.exitcode}); restart in "
                        f"{handle.backoff_s:.2f}s"
                    )
                    continue
                if now < handle.restart_at:
                    continue
                try:
                    replacement = self._await_ready(
                        *self._spawn(handle.worker_id, self.address[1])
                    )
                except WorkerStartupError as error:
                    handle.backoff_s = min(
                        self.config.restart_backoff_max_s, handle.backoff_s * 2.0
                    )
                    handle.restart_at = time.monotonic() + handle.backoff_s
                    self._announce(
                        f"worker {handle.worker_id} restart failed ({error}); "
                        f"retry in {handle.backoff_s:.2f}s"
                    )
                    continue
                replacement.restarts = handle.restarts + 1
                replacement.backoff_s = min(
                    self.config.restart_backoff_max_s, handle.backoff_s * 2.0
                )
                with self._lock:
                    self._workers[index] = replacement
                self.restarts += 1
                self._announce(
                    f"worker {replacement.worker_id} pid {replacement.pid} "
                    f"restarted on "
                    f"{replacement.address[0]}:{replacement.address[1]}"
                )
                self._broadcast_peers()
