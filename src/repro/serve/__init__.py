"""The serving half of the train-once/serve-many split.

:class:`PredictionEngine` loads a trained :class:`~repro.registry.ModelArtifact`
once and answers batched prediction requests — loop source or feature
vectors in, unroll factors out — with a malformed-input error taxonomy
instead of crashes, and per-request latency/throughput counters flowing
through :class:`~repro.instrument.MeasurementRollup`.
"""

from repro.serve.engine import (
    ERROR_BAD_FEATURE_VECTOR,
    ERROR_INTERNAL,
    ERROR_INVALID_JSON,
    ERROR_MALFORMED_REQUEST,
    ERROR_UNPARSEABLE_LOOP,
    PredictionEngine,
    error_response,
)

__all__ = [
    "ERROR_BAD_FEATURE_VECTOR",
    "ERROR_INTERNAL",
    "ERROR_INVALID_JSON",
    "ERROR_MALFORMED_REQUEST",
    "ERROR_UNPARSEABLE_LOOP",
    "PredictionEngine",
    "error_response",
]
