"""The serving half of the train-once/serve-many split.

:class:`PredictionEngine` loads a trained :class:`~repro.registry.ModelArtifact`
once and answers batched prediction requests — loop source or feature
vectors in, unroll factors out — with a malformed-input error taxonomy
instead of crashes, and per-request latency/throughput counters flowing
through :class:`~repro.instrument.MeasurementRollup`.

:class:`ServeGateway` hardens that engine for service shape: a bounded
queue with typed ``overloaded`` backpressure, per-client fair-share
admission, per-request deadlines, batched execution over engine replicas,
and a graceful drain that never drops admitted work.
:func:`load_serving_artifact` is the circuit breaker in front of both — a
corrupt artifact is quarantined and the registry's last good model is
served in its place.  :class:`ServeDaemon` is the network tier on top:
an asyncio TCP front-end that coalesces concurrent clients' requests
into vectorized engine batches, hot-reloads newer registry artifacts with
zero downtime, and answers ``healthz`` probes.  :class:`ServeCluster`
multiplies that daemon across N shared-nothing worker *processes* on one
port — ``SO_REUSEPORT`` kernel sharding where available, a round-robin
asyncio balancer elsewhere — with crash restarts, drain fan-out, and
aggregated cluster health.  :class:`RequestLog` records every served
prediction as append-mode JSON lines, off the hot path.
"""

from repro.serve.daemon import (
    BackgroundDaemon,
    DaemonConfig,
    ServeDaemon,
    WindowController,
    merge_worker_health,
    probe_healthz,
)
from repro.serve.engine import (
    ERROR_BAD_FEATURE_VECTOR,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_INVALID_JSON,
    ERROR_MALFORMED_REQUEST,
    ERROR_OVERLOADED,
    ERROR_UNPARSEABLE_LOOP,
    PredictionEngine,
    error_response,
)
from repro.serve.gateway import (
    BatchStats,
    GatewayConfig,
    GatewayCounters,
    ServeGateway,
)
from repro.serve.loader import LoadedArtifact, load_serving_artifact
from repro.serve.multiproc import (
    NO_REUSEPORT_ENV,
    ClusterConfig,
    ServeCluster,
    WorkerStartupError,
    reuseport_available,
)
from repro.serve.requestlog import (
    RequestLog,
    features_checksum,
    iter_request_log,
    read_request_log,
    request_log_segments,
)

__all__ = [
    "ERROR_BAD_FEATURE_VECTOR",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_INTERNAL",
    "ERROR_INVALID_JSON",
    "ERROR_MALFORMED_REQUEST",
    "ERROR_OVERLOADED",
    "ERROR_UNPARSEABLE_LOOP",
    "NO_REUSEPORT_ENV",
    "BackgroundDaemon",
    "BatchStats",
    "ClusterConfig",
    "DaemonConfig",
    "GatewayConfig",
    "GatewayCounters",
    "LoadedArtifact",
    "PredictionEngine",
    "RequestLog",
    "ServeCluster",
    "ServeDaemon",
    "ServeGateway",
    "WindowController",
    "WorkerStartupError",
    "error_response",
    "features_checksum",
    "iter_request_log",
    "load_serving_artifact",
    "merge_worker_health",
    "probe_healthz",
    "read_request_log",
    "request_log_segments",
    "reuseport_available",
]
