"""The batched prediction engine.

One engine wraps one loaded artifact and answers any number of requests
without ever retraining — the paper's compile-time deployment path scaled
to service shape.  Requests are plain dicts (the JSON-lines protocol of
``repro-unroll serve``):

* ``{"id": ..., "features": [38 floats]}`` — a pre-extracted feature
  vector in catalog order;
* ``{"id": ..., "source": "loop ... end"}`` — loop-language source; every
  loop in the program gets a prediction;
* either form takes an optional
  ``"classifier": "nn" | "svm" | "mlp" | "forest" | "ensemble"``.

Responses mirror the request ``id`` and either carry a factor or a typed
error; ensemble responses additionally carry ``confidence`` (combined
probability of the chosen factor) and ``votes`` (per-family factors) — **every** malformed input maps onto the error taxonomy below and
comes back as a response; the engine never raises on bad input, so one
poisoned request cannot take down a batch.

Each request is timed and recorded into a
:class:`~repro.instrument.MeasurementRollup` (one unit per request,
``seconds`` = latency), which gives the CLI p50/p95/p99 latency and
requests-per-second for free.  Batches fan out over a thread pool —
prediction is pure NumPy on immutable state, so requests are trivially
parallel — and responses always come back in request order.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.features.catalog import N_FEATURES
from repro.instrument.report import MeasurementRollup, UnitTiming
from repro.registry.artifact import ModelArtifact
from repro.resilience.faults import get_injector

#: A line that was not valid JSON (only the CLI layer produces this).
ERROR_INVALID_JSON = "invalid-json"
#: Structurally wrong request: not an object, no/ambiguous payload,
#: unknown classifier.
ERROR_MALFORMED_REQUEST = "malformed-request"
#: A feature vector of the wrong length, or with non-numeric/non-finite
#: entries.
ERROR_BAD_FEATURE_VECTOR = "bad-feature-vector"
#: Loop source that does not lex/parse (including "no loops found").
ERROR_UNPARSEABLE_LOOP = "unparseable-loop"
#: Anything unexpected; the message carries the exception text.
ERROR_INTERNAL = "internal-error"
#: The gateway's bounded queue is full — backpressure, retry later.
ERROR_OVERLOADED = "overloaded"
#: The request's deadline elapsed before (or while) it was served.
ERROR_DEADLINE_EXCEEDED = "deadline-exceeded"

_CLASSIFIERS = ("nn", "svm", "mlp", "forest", "ensemble")


def error_response(request_id, error_type: str, message: str, latency_s: float = 0.0) -> dict:
    """A typed error response (the only failure shape the engine emits)."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
        "latency_ms": round(latency_s * 1e3, 3),
    }


class _MalformedRequest(Exception):
    """Internal: maps a validation failure onto (error_type, message)."""

    def __init__(self, error_type: str, message: str):
        super().__init__(message)
        self.error_type = error_type


class _InvalidLine:
    """Sentinel for a JSON-lines entry that failed to parse."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message


def parse_request_lines(lines) -> list:
    """JSON-lines protocol parsing: one request per non-blank line; a line
    that is not valid JSON becomes an :class:`_InvalidLine` sentinel that
    the engine maps onto an ``invalid-json`` response in its slot."""
    requests = []
    for line in lines:
        text = line.strip()
        if not text:
            continue
        try:
            requests.append(json.loads(text))
        except json.JSONDecodeError as error:
            requests.append(_InvalidLine(str(error)))
    return requests


class PredictionEngine:
    """Load an artifact once, answer batched requests concurrently."""

    def __init__(
        self,
        artifact: ModelArtifact,
        classifier: str = "svm",
        rollup: MeasurementRollup | None = None,
    ):
        if classifier not in _CLASSIFIERS:
            raise ValueError(f"unknown classifier {classifier!r}")
        self.artifact = artifact
        self.default_classifier = classifier
        self.rollup = rollup if rollup is not None else MeasurementRollup()
        # Resolve each classifier's heuristic once; every request (and the
        # vectorized batch path) reads this immutable table instead of
        # re-asking the artifact per prediction.
        self._heuristics = {name: artifact.heuristic(name) for name in _CLASSIFIERS}
        # Requests carry full-catalog vectors when the model selects a
        # subset (the heuristic applies it); models trained without a
        # subset dictate their own input width.
        if artifact.feature_indices is not None:
            self.input_width = N_FEATURES
        else:
            self.input_width = int(artifact.nn.classifier._X.shape[1])

    # ------------------------------------------------------------------

    def handle(self, request) -> dict:
        """Answer one request dict; never raises on bad input."""
        start = time.perf_counter()
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            payload, n_loops = self._dispatch(request)
        except _MalformedRequest as error:
            latency = time.perf_counter() - start
            self._record(0, 0, latency)
            return error_response(request_id, error.error_type, str(error), latency)
        except Exception as error:
            # The taxonomy's floor: any defect below _dispatch becomes a
            # typed response instead of a crashed batch.  Reached in tests
            # through the ``serve.internal`` fault-injection site.
            latency = time.perf_counter() - start
            self._record(0, 0, latency)
            return error_response(request_id, ERROR_INTERNAL, str(error), latency)
        latency = time.perf_counter() - start
        self._record(payload["factor"], n_loops, latency)
        response = {"id": request_id, "ok": True, "latency_ms": round(latency * 1e3, 3)}
        response.update(payload)
        return response

    def handle_batch(self, requests) -> list[dict]:
        """Answer a batch with one vectorized prediction per classifier.

        Feature-vector requests that pass validation are stacked into a
        single ``(B, width)`` matrix and answered by one
        ``predict_features`` call per classifier — the micro-batching fast
        path the serve daemon coalesces traffic into.  Everything else
        (source requests, malformed input) falls through to :meth:`handle`
        in place, so the error taxonomy and response shapes are identical
        to per-request serving.  Responses come back in request order.

        With a fault plan active the batch is served request-by-request:
        the ``serve.delay`` / ``serve.internal`` / per-request injection
        semantics only exist on the scalar path, and chaos runs must keep
        them.
        """
        requests = list(requests)
        if len(requests) <= 1 or get_injector().active:
            return [self.handle(request) for request in requests]
        responses: list[dict | None] = [None] * len(requests)
        groups: dict[str, list[tuple[int, np.ndarray]]] = {}
        for index, request in enumerate(requests):
            vectorized = self._vectorizable(request)
            if vectorized is None:
                responses[index] = self.handle(request)
            else:
                classifier, vector = vectorized
                groups.setdefault(classifier, []).append((index, vector))
        for classifier, members in groups.items():
            # Clock each group's own stack+predict, not the whole batch:
            # latency_ms must stay comparable with the scalar path, which
            # never charges a request for its batch-mates' work.
            group_start = time.perf_counter()
            try:
                matrix = np.stack([vector for _, vector in members])
                if classifier == "ensemble":
                    # Same predict_detail call as the scalar path, so the
                    # batched factor/confidence/votes match per-request
                    # serving exactly.
                    detail = self._heuristics[classifier].predict_detail(matrix)
                    factors = detail.labels
                else:
                    detail = None
                    factors = self._heuristics[classifier].predict_features(matrix)
            except Exception:
                # The taxonomy's floor, batch edition: if the vectorized
                # call fails, each member is re-answered individually so a
                # defect surfaces as typed per-request responses, never a
                # crashed batch.
                for index, _ in members:
                    responses[index] = self.handle(requests[index])
                continue
            latency = time.perf_counter() - group_start
            latency_ms = round(latency * 1e3, 3)
            for row, ((index, _), factor) in enumerate(zip(members, factors)):
                request = requests[index]
                self._record(int(factor), 1, latency)
                if detail is not None:
                    payload = self._ensemble_payload(detail, row)
                else:
                    payload = {"factor": int(factor), "classifier": classifier}
                response = {
                    "id": request.get("id"),
                    "ok": True,
                    "latency_ms": latency_ms,
                }
                response.update(payload)
                responses[index] = response
        return responses

    def _vectorizable(self, request) -> tuple[str, np.ndarray] | None:
        """``(classifier, vector)`` when a request can join a stacked
        batch; ``None`` routes it through :meth:`handle` (which emits the
        typed error for anything actually malformed)."""
        if not isinstance(request, dict):
            return None
        if "features" not in request or "source" in request:
            return None
        classifier = request.get("classifier", self.default_classifier)
        if classifier not in _CLASSIFIERS:
            return None
        try:
            vector = self._coerce_features(request["features"])
        except _MalformedRequest:
            return None
        return classifier, vector

    def serve_batch(self, requests, max_workers: int | None = None) -> list[dict]:
        """Answer a batch; responses come back in request order.

        ``max_workers`` > 1 fans requests over a thread pool (prediction
        is pure NumPy on immutable state); the default serves serially.
        """
        requests = list(requests)
        if max_workers is not None and max_workers > 1 and len(requests) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(self.handle, requests))
        return [self.handle(request) for request in requests]

    def serve_lines(self, lines, max_workers: int | None = None) -> list[dict]:
        """The JSON-lines batch protocol: one request per non-blank line;
        a line that is not valid JSON yields an ``invalid-json`` response
        in its slot rather than aborting the batch."""
        return self.serve_batch(parse_request_lines(lines), max_workers=max_workers)

    # ------------------------------------------------------------------

    def _record(self, factor: int, n_loops: int, seconds: float) -> None:
        self.rollup.record(
            UnitTiming(
                benchmark="serve",
                factor=int(factor),
                worker=threading.get_ident(),
                n_loops=n_loops,
                seconds=seconds,
            )
        )

    def _dispatch(self, request) -> tuple[dict, int]:
        injector = get_injector()
        if injector.active:
            key = str(request.get("id")) if isinstance(request, dict) else ""
            injector.delay("serve.delay", key)
            injector.raise_fault("serve.internal", key)
        if isinstance(request, _InvalidLine):
            raise _MalformedRequest(ERROR_INVALID_JSON, request.message)
        if not isinstance(request, dict):
            raise _MalformedRequest(
                ERROR_MALFORMED_REQUEST,
                f"request must be a JSON object, got {type(request).__name__}",
            )
        classifier = request.get("classifier", self.default_classifier)
        if classifier not in _CLASSIFIERS:
            raise _MalformedRequest(
                ERROR_MALFORMED_REQUEST,
                f"unknown classifier {classifier!r} (choose from {', '.join(_CLASSIFIERS)})",
            )
        has_features = "features" in request
        has_source = "source" in request
        if has_features == has_source:
            raise _MalformedRequest(
                ERROR_MALFORMED_REQUEST,
                "request needs exactly one of 'features' or 'source'",
            )
        if has_features:
            return self._predict_features(request["features"], classifier), 1
        loops = self._predict_source(request["source"], classifier)
        payload = {
            "factor": loops[0]["factor"],
            "classifier": classifier,
            "loops": loops,
        }
        return payload, len(loops)

    def _coerce_features(self, features) -> np.ndarray:
        """Validate one feature payload into a ``(width,)`` float vector;
        raises :class:`_MalformedRequest` on any structural defect."""
        if not isinstance(features, (list, tuple)):
            raise _MalformedRequest(
                ERROR_BAD_FEATURE_VECTOR, "'features' must be a list of numbers"
            )
        try:
            vector = np.asarray(features, dtype=np.float64)
        except (TypeError, ValueError):
            raise _MalformedRequest(
                ERROR_BAD_FEATURE_VECTOR, "'features' contains non-numeric entries"
            ) from None
        if vector.shape != (self.input_width,):
            raise _MalformedRequest(
                ERROR_BAD_FEATURE_VECTOR,
                f"expected {self.input_width} features, got shape {vector.shape}",
            )
        if not np.isfinite(vector).all():
            raise _MalformedRequest(
                ERROR_BAD_FEATURE_VECTOR, "'features' contains non-finite entries"
            )
        return vector

    def _predict_features(self, features, classifier: str) -> dict:
        """The success payload for one feature-vector request.  The
        ensemble goes through :meth:`predict_detail` so the scalar path
        reports exactly what the batched path reports."""
        vector = self._coerce_features(features)
        heuristic = self._heuristics[classifier]
        if classifier == "ensemble":
            detail = heuristic.predict_detail(vector[None, :])
            return self._ensemble_payload(detail, 0)
        factor = int(heuristic.predict_features(vector[None, :])[0])
        return {"factor": factor, "classifier": classifier}

    @staticmethod
    def _ensemble_payload(detail, row: int) -> dict:
        """One row of an ensemble detail batch as response fields."""
        return {
            "factor": int(detail.labels[row]),
            "classifier": "ensemble",
            "confidence": float(detail.confidence[row]),
            "votes": {
                family: int(labels[row]) for family, labels in detail.votes.items()
            },
        }

    def _predict_source(self, source, classifier: str) -> list[dict]:
        from repro.frontend import LexError, ParseError, parse_program

        if not isinstance(source, str):
            raise _MalformedRequest(ERROR_UNPARSEABLE_LOOP, "'source' must be a string")
        try:
            entries = parse_program(source)
        except (LexError, ParseError) as error:
            raise _MalformedRequest(ERROR_UNPARSEABLE_LOOP, str(error)) from None
        heuristic = self._heuristics[classifier]
        if classifier == "ensemble":
            loops = []
            for entry in entries:
                factor, confidence = heuristic.predict_loop_detail(entry.loop)
                loops.append(
                    {"loop": entry.loop.name, "factor": factor, "confidence": confidence}
                )
            return loops
        return [
            {"loop": entry.loop.name, "factor": int(heuristic.predict_loop(entry.loop))}
            for entry in entries
        ]
