"""Artifact loading for the serve path: quarantine, then fall back.

A serving process that dies because its model file rotted helps nobody.
:func:`load_serving_artifact` is the circuit breaker between the registry
and the engine: a corrupt artifact is quarantined (renamed ``*.corrupt``,
exactly like the measurement cache) and, when an
:class:`~repro.registry.ArtifactStore` is available, the newest loadable
entry in the registry is served instead — degraded provenance beats an
outage, and the result says so (``fallback=True`` plus one recorded
failure per rejected candidate) so the operator is told rather than
surprised.

The ``artifact.bitflip`` fault-injection site flips one byte of a candidate
file before it is read, so the whole chain — checksum rejection,
quarantine, fallback — is exercised in CI by a genuinely damaged file.
"""

from __future__ import annotations

import dataclasses
import logging
from pathlib import Path

from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.registry.artifact import (
    ArtifactError,
    ArtifactStore,
    CorruptArtifactError,
    ModelArtifact,
    StaleArtifactError,
    load_or_quarantine,
)
from repro.resilience.faults import get_injector

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class LoadedArtifact:
    """What the serve path ended up loading.

    ``fallback`` is true when the requested file could not be served and
    ``path`` is the registry's last good artifact instead; ``failures``
    carries one message per rejected candidate (empty on a clean load).
    """

    artifact: ModelArtifact
    path: Path
    fallback: bool
    failures: tuple[str, ...] = ()


def _next_candidate(store: ArtifactStore, tried: set[Path]) -> Path | None:
    """The newest registry entry not yet attempted, by mtime."""
    best: tuple[float, Path] | None = None
    for path in store.entries():
        if path.resolve() in tried:
            continue
        try:
            mtime = path.stat().st_mtime
        except FileNotFoundError:
            continue
        if best is None or mtime > best[0]:
            best = (mtime, path)
    return best[1] if best is not None else None


def load_serving_artifact(
    path: str | Path,
    store: ArtifactStore | None = None,
    machine: MachineModel = ITANIUM2,
) -> LoadedArtifact:
    """Load the artifact to serve, falling back to the registry's last good.

    The requested ``path`` is tried first.  If it is corrupt (quarantined
    on the spot) or schema-stale, and a ``store`` was given, registry
    entries are tried newest-first until one loads.  Exhausting every
    candidate raises :class:`~repro.registry.ArtifactError` carrying the
    full failure trail.  A *missing* requested file raises
    ``FileNotFoundError`` with no fallback — a typo'd path is an operator
    error, not an outage to route around.
    """
    requested = Path(path)
    injector = get_injector()
    failures: list[str] = []
    tried: set[Path] = set()
    candidate: Path | None = requested
    while candidate is not None:
        tried.add(candidate.resolve())
        if injector.active and candidate.exists():
            injector.corrupt_file("artifact.bitflip", candidate.name, candidate)
        try:
            artifact = load_or_quarantine(candidate, machine=machine)
        except FileNotFoundError:
            if candidate == requested:
                raise
            failures.append(f"{candidate}: no such file")  # lost a race; next
        except (CorruptArtifactError, StaleArtifactError) as error:
            failures.append(str(error))
        else:
            fallback = candidate != requested
            if fallback:
                logger.warning(
                    "serving last-good artifact %s instead of %s (%s)",
                    candidate.name,
                    requested,
                    "; ".join(failures),
                )
            return LoadedArtifact(
                artifact=artifact,
                path=candidate,
                fallback=fallback,
                failures=tuple(failures),
            )
        candidate = _next_candidate(store, tried) if store is not None else None
    raise ArtifactError("no servable model artifact: " + "; ".join(failures))
