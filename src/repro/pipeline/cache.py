"""Self-healing disk cache for the expensive pipeline artefacts.

Measuring 72 benchmarks at 8 unroll factors in two scheduling regimes takes
minutes; the benches and examples want it instant.  Artefacts are keyed by a
hash of everything that determines them (suite seed and scale, labelling
config, machine description, schema version), so a stale cache can never be
confused for a current one.

The store is built to survive a hostile filesystem:

* **Atomic writes** — tables are written to a temp file and moved into
  place with ``os.replace``; readers never see a half-written entry.
* **Corruption is a miss** — a bad zip, truncated file, or missing array
  raises :class:`~repro.pipeline.measurements.CorruptTableError`, the entry
  is quarantined (renamed ``*.corrupt``) with a logged warning, and the
  table is re-measured and re-written.  Nothing downstream ever sees
  ``zipfile.BadZipFile``.
* **Schema versioning** — :data:`SCHEMA_VERSION` participates in the key
  hash, so a format change simply stops matching old entries instead of
  misreading them.
* **Operable** — ``repro-unroll cache stats|gc|clear`` inspects and prunes
  the store; ``REPRO_CACHE_DIR`` relocates it (tests point it at a tmp
  dir so runs never share state).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import time
from pathlib import Path

from repro.instrument.report import MeasurementRollup
from repro.ir.program import Suite
from repro.machine.model import MachineModel
from repro.ml.dataset import LoopDataset
from repro.pipeline.labeling import LabelingConfig, measure_suite
from repro.pipeline.measurements import CorruptTableError, MeasurementTable
from repro.resilience.faults import get_injector
from repro.workloads.generator import WORKLOADS_VERSION, generate_suite

logger = logging.getLogger(__name__)

#: Default caps on quarantined (``*.corrupt``) files.  Quarantined entries
#: are evidence for debugging, not data — keep the most recent few and age
#: the rest out, opportunistically on every write, so a store that keeps
#: hitting corruption cannot fill the disk with tombstones.
QUARANTINE_CAP = 16
QUARANTINE_MAX_AGE_S = 7 * 24 * 3600.0

#: Version of the on-disk measurement-table schema.  Mixed into every cache
#: key, so bumping it orphans (never misreads) existing entries.
#: v5: batched noise-stream contract (one block draw per work unit) changed
#: measured medians relative to the per-loop scalar draws of v4.
SCHEMA_VERSION = 5

#: Default cache directory (repository-local, ignored by packaging).
DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache"


def default_cache_dir() -> Path:
    """The active cache root: ``REPRO_CACHE_DIR`` if set, else the
    repository-local ``.cache/``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(env) if env else DEFAULT_CACHE_DIR


def _machine_fingerprint(machine: MachineModel) -> dict:
    payload = {
        field.name: getattr(machine, field.name)
        for field in dataclasses.fields(machine)
        if field.name not in ("fu_counts", "latencies", "icache", "dcache")
    }
    payload["fu_counts"] = {k.value: v for k, v in machine.fu_counts.items()}
    payload["latencies"] = {k.value: v for k, v in machine.latencies.items()}
    payload["icache"] = dataclasses.asdict(machine.icache)
    payload["dcache"] = dataclasses.asdict(machine.dcache)
    return payload


def config_key(suite_seed: int, loops_scale: float, config: LabelingConfig) -> str:
    """Stable hash of everything that determines a measurement table."""
    payload = {
        "suite_seed": suite_seed,
        "loops_scale": loops_scale,
        "seed": config.seed,
        "swp": config.swp,
        "n_runs": config.n_runs,
        "noise": dataclasses.asdict(config.noise),
        # The noise stream contract changes the medians; the cost-model
        # engine and content-addressed dedup do not (fast, incremental,
        # and reference are bit-identical, and a dedup run fans out to
        # the same bytes as measuring every loop), so only the former
        # participates in the key.
        "batched_noise": config.batched_noise,
        "machine": _machine_fingerprint(config.machine),
        "workloads_version": WORKLOADS_VERSION,
        "schema": SCHEMA_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """A snapshot of the store's contents."""

    directory: Path
    n_entries: int
    n_quarantined: int
    n_stale_tmp: int
    total_bytes: int
    quarantine_cap: int = QUARANTINE_CAP

    def summary(self) -> str:
        return (
            f"{self.directory}: {self.n_entries} entries "
            f"({self.total_bytes / 1024:.0f} KiB), "
            f"{self.n_quarantined} quarantined (cap {self.quarantine_cap}), "
            f"{self.n_stale_tmp} stale temp file(s)"
        )


class CacheStore:
    """The self-healing measurement-table store.

    All mutation goes through atomic renames, so concurrent writers (the
    parallel pipeline, two CLI invocations) can race without ever leaving a
    torn entry: last writer wins, and both wrote identical bytes anyway
    because the key pins every input.
    """

    PREFIX = "measurements_"
    QUARANTINE_SUFFIX = ".corrupt"

    def __init__(
        self,
        root: str | Path | None = None,
        quarantine_cap: int = QUARANTINE_CAP,
        quarantine_max_age_s: float = QUARANTINE_MAX_AGE_S,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.quarantine_cap = quarantine_cap
        self.quarantine_max_age_s = quarantine_max_age_s

    def path_for(self, key: str) -> Path:
        return self.root / f"{self.PREFIX}{key}.npz"

    def entries(self) -> list[Path]:
        return sorted(self.root.glob(f"{self.PREFIX}*.npz"))

    def quarantined(self) -> list[Path]:
        return sorted(self.root.glob(f"*{self.QUARANTINE_SUFFIX}"))

    def stale_tmp(self) -> list[Path]:
        return sorted(self.root.glob(".*.tmp"))

    # ------------------------------------------------------------------

    def load(self, key: str) -> MeasurementTable | None:
        """The cached table for ``key``, or ``None`` on a miss.

        A corrupt entry is quarantined and reported as a miss — the caller
        re-measures and the store heals on the subsequent write.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        injector = get_injector()
        if injector.active:
            injector.corrupt_file("cache.corrupt", key, path)
        try:
            return MeasurementTable.load(path)
        except FileNotFoundError:
            return None  # lost a race with clear()/gc(); just re-measure
        except CorruptTableError as error:
            self.quarantine(path, error)
            return None

    def store(self, key: str, table: MeasurementTable) -> Path:
        path = self.path_for(key)
        table.save(path)  # atomic: temp file + os.replace
        # Writes are the store's natural housekeeping moment: apply the
        # quarantine caps opportunistically so tombstones never accumulate
        # past the cap even if nobody ever runs ``cache gc``.
        self.prune_quarantined()
        return path

    def quarantine(self, path: Path, error: Exception) -> Path | None:
        """Move a corrupt entry aside so it can never be re-read as live."""
        target = path.with_name(path.name + self.QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return None  # another process already moved or removed it
        logger.warning("quarantined corrupt cache entry %s: %s", path.name, error)
        return target

    def prune_quarantined(self, now: float | None = None) -> list[Path]:
        """Apply the quarantine age and count caps; returns what was removed.

        Oldest-first by mtime: everything past ``quarantine_max_age_s`` goes,
        then the oldest survivors until at most ``quarantine_cap`` remain.
        A file another process removes mid-prune is simply skipped.
        """
        stamped: list[tuple[float, Path]] = []
        for path in self.quarantined():
            try:
                stamped.append((path.stat().st_mtime, path))
            except FileNotFoundError:
                pass
        stamped.sort()
        now = time.time() if now is None else now
        removed: list[Path] = []
        keep: list[Path] = []
        for mtime, path in stamped:
            if now - mtime > self.quarantine_max_age_s:
                removed.append(path)
            else:
                keep.append(path)
        overflow = len(keep) - self.quarantine_cap
        if overflow > 0:
            removed.extend(keep[:overflow])
        for path in removed:
            path.unlink(missing_ok=True)
        if removed:
            logger.info(
                "pruned %d quarantined cache file(s) past the age/count caps",
                len(removed),
            )
        return removed

    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        entries = self.entries()
        return CacheStats(
            directory=self.root,
            n_entries=len(entries),
            n_quarantined=len(self.quarantined()),
            n_stale_tmp=len(self.stale_tmp()),
            total_bytes=sum(p.stat().st_size for p in entries if p.exists()),
            quarantine_cap=self.quarantine_cap,
        )

    def gc(self) -> list[Path]:
        """Prune everything unreadable: quarantined files, stale temp
        files, and live entries that fail to load.  Returns what was
        removed."""
        removed: list[Path] = []
        for path in self.quarantined() + self.stale_tmp():
            path.unlink(missing_ok=True)
            removed.append(path)
        for path in self.entries():
            try:
                MeasurementTable.load(path)
            except CorruptTableError:
                path.unlink(missing_ok=True)
                removed.append(path)
            except FileNotFoundError:
                pass
        return removed

    def clear(self) -> int:
        """Remove every entry (live, quarantined, and temp); returns the
        number of files removed."""
        count = 0
        for path in self.entries() + self.quarantined() + self.stale_tmp():
            path.unlink(missing_ok=True)
            count += 1
        return count


def cached_measurements(
    suite: Suite,
    suite_seed: int,
    loops_scale: float,
    config: LabelingConfig,
    cache_dir: Path | None = None,
    jobs: int | None = None,
    rollup: MeasurementRollup | None = None,
) -> MeasurementTable:
    """Measure the suite, or load the cached table if one matches."""
    store = CacheStore(cache_dir)
    key = config_key(suite_seed, loops_scale, config)
    table = store.load(key)
    if table is not None:
        if table.swp == config.swp and len(table) == suite.n_loops:
            return table
        # A key collision (or a foreign file under our name) — treat as a
        # miss and overwrite with the real thing.
        logger.warning("cache entry %s does not match its config; re-measuring", key)
    table = measure_suite(suite, config, jobs=jobs, rollup=rollup)
    store.store(key, table)
    return table


@dataclasses.dataclass(frozen=True)
class Artifacts:
    """Everything the experiments consume, built once and cached."""

    suite: Suite
    table: MeasurementTable
    dataset: LoopDataset
    config: LabelingConfig


def build_artifacts(
    suite_seed: int = 20050320,
    loops_scale: float = 1.0,
    swp: bool = False,
    config: LabelingConfig | None = None,
    cache_dir: Path | None = None,
    jobs: int | None = None,
    rollup: MeasurementRollup | None = None,
) -> Artifacts:
    """Generate the suite, measure it (cache-aware, optionally in
    parallel), and label it."""
    config = config or LabelingConfig(seed=suite_seed, swp=swp)
    suite = generate_suite(seed=suite_seed, loops_scale=loops_scale)
    table = cached_measurements(
        suite, suite_seed, loops_scale, config, cache_dir, jobs=jobs, rollup=rollup
    )
    dataset = table.to_dataset(config.min_cycles, config.min_benefit)
    return Artifacts(suite=suite, table=table, dataset=dataset, config=config)
