"""Disk cache for the expensive pipeline artefacts.

Measuring 72 benchmarks at 8 unroll factors in two scheduling regimes takes
minutes; the benches and examples want it instant.  Artefacts are keyed by a
hash of everything that determines them (suite seed and scale, labelling
config, machine description), so a stale cache can never be confused for a
current one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.ir.program import Suite
from repro.machine.model import MachineModel
from repro.ml.dataset import LoopDataset
from repro.pipeline.labeling import LabelingConfig, measure_suite
from repro.pipeline.measurements import MeasurementTable
from repro.workloads.generator import WORKLOADS_VERSION, generate_suite

#: Default cache directory (repository-local, ignored by packaging).
DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache"


def _machine_fingerprint(machine: MachineModel) -> dict:
    payload = {
        field.name: getattr(machine, field.name)
        for field in dataclasses.fields(machine)
        if field.name not in ("fu_counts", "latencies", "icache", "dcache")
    }
    payload["fu_counts"] = {k.value: v for k, v in machine.fu_counts.items()}
    payload["latencies"] = {k.value: v for k, v in machine.latencies.items()}
    payload["icache"] = dataclasses.asdict(machine.icache)
    payload["dcache"] = dataclasses.asdict(machine.dcache)
    return payload


def config_key(suite_seed: int, loops_scale: float, config: LabelingConfig) -> str:
    """Stable hash of everything that determines a measurement table."""
    payload = {
        "suite_seed": suite_seed,
        "loops_scale": loops_scale,
        "seed": config.seed,
        "swp": config.swp,
        "n_runs": config.n_runs,
        "noise": dataclasses.asdict(config.noise),
        "machine": _machine_fingerprint(config.machine),
        "workloads_version": WORKLOADS_VERSION,
        "format": 3,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def cached_measurements(
    suite: Suite,
    suite_seed: int,
    loops_scale: float,
    config: LabelingConfig,
    cache_dir: Path | None = None,
) -> MeasurementTable:
    """Measure the suite, or load the cached table if one matches."""
    cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
    key = config_key(suite_seed, loops_scale, config)
    path = cache_dir / f"measurements_{key}.npz"
    if path.exists():
        return MeasurementTable.load(path)
    table = measure_suite(suite, config)
    table.save(path)
    return table


@dataclasses.dataclass(frozen=True)
class Artifacts:
    """Everything the experiments consume, built once and cached."""

    suite: Suite
    table: MeasurementTable
    dataset: LoopDataset
    config: LabelingConfig


def build_artifacts(
    suite_seed: int = 20050320,
    loops_scale: float = 1.0,
    swp: bool = False,
    config: LabelingConfig | None = None,
    cache_dir: Path | None = None,
) -> Artifacts:
    """Generate the suite, measure it (cache-aware), and label it."""
    config = config or LabelingConfig(seed=suite_seed, swp=swp)
    suite = generate_suite(seed=suite_seed, loops_scale=loops_scale)
    table = cached_measurements(suite, suite_seed, loops_scale, config, cache_dir)
    dataset = table.to_dataset(config.min_cycles, config.min_benefit)
    return Artifacts(suite=suite, table=table, dataset=dataset, config=config)
