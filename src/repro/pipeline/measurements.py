"""The full measurement table: every loop, every unroll factor.

The labelled dataset (2,500+ surviving loops) is what the classifiers
train on, but the *whole-program* experiments need more: a benchmark's
runtime sums over **all** its loops, including the ones the noise filters
rejected.  :class:`MeasurementTable` is that superset — one row per loop in
the suite, carrying static features, noisy measured medians, and noise-free
truth per factor.  The labelled dataset is a filtered view of it.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.features.catalog import N_FEATURES
from repro.ir.types import MAX_UNROLL
from repro.ml.dataset import LoopDataset


class CorruptTableError(RuntimeError):
    """A measurement table on disk is corrupt, truncated, or incomplete.

    The cache layer treats this as a miss: the offending file is
    quarantined and the table is re-measured.  Anything that can go wrong
    while deserialising — a bad zip container, missing arrays, wrong
    shapes — maps onto this one exception so callers need a single
    ``except``.
    """


@dataclass(frozen=True)
class MeasurementTable:
    """Per-loop measurements over the full suite (no filtering).

    Attributes mirror :class:`~repro.ml.dataset.LoopDataset`, plus
    ``entry_counts`` (needed to reason about per-entry costs).
    """

    X: np.ndarray  # (n, 38) static features
    measured: np.ndarray  # (n, 8) median measured cycles per factor
    true_cycles: np.ndarray  # (n, 8) noise-free cycles per factor
    loop_names: np.ndarray
    benchmarks: np.ndarray
    suites: np.ndarray
    languages: np.ndarray
    entry_counts: np.ndarray
    swp: bool

    def __post_init__(self) -> None:
        n = len(self.loop_names)
        if self.X.shape != (n, N_FEATURES):
            raise ValueError(f"feature matrix must be ({n}, {N_FEATURES})")
        for name in ("measured", "true_cycles"):
            if getattr(self, name).shape != (n, MAX_UNROLL):
                raise ValueError(f"{name} must be ({n}, {MAX_UNROLL})")

    def __len__(self) -> int:
        return len(self.loop_names)

    # ------------------------------------------------------------------

    def survivor_mask(self, min_cycles: float, min_benefit: float) -> np.ndarray:
        """The paper's two filters as a boolean row mask: the rolled loop
        must run at least ``min_cycles``, and the best factor must beat the
        all-factor average by ``min_benefit``."""
        long_enough = self.measured[:, 0] >= min_cycles
        best = self.measured.min(axis=1)
        informative = self.measured.mean(axis=1) / best >= min_benefit
        return long_enough & informative

    def to_dataset(self, min_cycles: float, min_benefit: float) -> LoopDataset:
        """The labelled training dataset: filtered rows, argmin labels."""
        mask = self.survivor_mask(min_cycles, min_benefit)
        if not mask.any():
            raise ValueError("no loops survived the filters")
        labels = np.argmin(self.measured[mask], axis=1) + 1
        return LoopDataset(
            X=self.X[mask],
            labels=labels.astype(np.int64),
            cycles=self.measured[mask],
            true_cycles=self.true_cycles[mask],
            loop_names=self.loop_names[mask],
            benchmarks=self.benchmarks[mask],
            suites=self.suites[mask],
            languages=self.languages[mask],
            swp=self.swp,
        )

    def rows_for_benchmark(self, benchmark: str) -> np.ndarray:
        """Row indices belonging to one benchmark."""
        return np.flatnonzero(self.benchmarks == benchmark)

    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Atomically persist the table.

        The arrays are written to a same-directory temp file and moved into
        place with :func:`os.replace`, so a reader can never observe a
        half-written table — a crashed or killed writer leaves the previous
        version (or nothing) behind, never a truncated zip.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle,
                    X=self.X,
                    measured=self.measured,
                    true_cycles=self.true_cycles,
                    loop_names=self.loop_names.astype(str),
                    benchmarks=self.benchmarks.astype(str),
                    suites=self.suites.astype(str),
                    languages=self.languages.astype(str),
                    entry_counts=self.entry_counts,
                    swp=np.array([self.swp]),
                )
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: str | Path) -> "MeasurementTable":
        """Load a saved table; raise :class:`CorruptTableError` if the file
        is unreadable, missing arrays, or shape-inconsistent."""
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                return cls(
                    X=data["X"],
                    measured=data["measured"],
                    true_cycles=data["true_cycles"],
                    loop_names=data["loop_names"],
                    benchmarks=data["benchmarks"],
                    suites=data["suites"],
                    languages=data["languages"],
                    entry_counts=data["entry_counts"],
                    swp=bool(data["swp"][0]),
                )
        except FileNotFoundError:
            raise
        except (
            zipfile.BadZipFile,
            zlib.error,  # a flipped byte inside a deflated member
            KeyError,
            ValueError,
            OSError,
            EOFError,
            IndexError,
        ) as error:
            raise CorruptTableError(f"unreadable measurement table {path}: {error}") from error
