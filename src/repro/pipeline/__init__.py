"""End-to-end pipeline: measure -> filter/label -> train -> evaluate."""

from repro.pipeline.cache import (
    SCHEMA_VERSION,
    Artifacts,
    CacheStats,
    CacheStore,
    build_artifacts,
    cached_measurements,
    config_key,
    default_cache_dir,
)
from repro.pipeline.evaluation import (
    BenchmarkResult,
    EvaluationConfig,
    SpeedupReport,
    evaluate_speedups,
)
from repro.pipeline.labeling import (
    LabelingConfig,
    LabelingStats,
    UnitResult,
    label_suite,
    measure_benchmark_factor,
    measure_benchmark_factor_pair,
    measure_loop_cycles,
    measure_suite,
    measure_suite_pair,
    resolve_jobs,
    stats_from_table,
)
from repro.pipeline.measurements import CorruptTableError, MeasurementTable

__all__ = [
    "Artifacts",
    "BenchmarkResult",
    "CacheStats",
    "CacheStore",
    "CorruptTableError",
    "EvaluationConfig",
    "LabelingConfig",
    "LabelingStats",
    "MeasurementTable",
    "SCHEMA_VERSION",
    "SpeedupReport",
    "UnitResult",
    "build_artifacts",
    "cached_measurements",
    "config_key",
    "default_cache_dir",
    "evaluate_speedups",
    "label_suite",
    "measure_benchmark_factor",
    "measure_benchmark_factor_pair",
    "measure_loop_cycles",
    "measure_suite",
    "measure_suite_pair",
    "resolve_jobs",
    "stats_from_table",
]
