"""End-to-end pipeline: measure -> filter/label -> train -> evaluate."""

from repro.pipeline.cache import Artifacts, build_artifacts, cached_measurements, config_key
from repro.pipeline.evaluation import (
    BenchmarkResult,
    EvaluationConfig,
    SpeedupReport,
    evaluate_speedups,
)
from repro.pipeline.labeling import (
    LabelingConfig,
    LabelingStats,
    label_suite,
    measure_loop_cycles,
    measure_suite,
    stats_from_table,
)
from repro.pipeline.measurements import MeasurementTable

__all__ = [
    "Artifacts",
    "BenchmarkResult",
    "EvaluationConfig",
    "LabelingConfig",
    "LabelingStats",
    "MeasurementTable",
    "SpeedupReport",
    "build_artifacts",
    "cached_measurements",
    "config_key",
    "evaluate_speedups",
    "label_suite",
    "measure_loop_cycles",
    "measure_suite",
    "stats_from_table",
]
