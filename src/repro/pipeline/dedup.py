"""Content-addressed measurement dedup over a benchmark suite.

The synthetic suites are full of structurally isomorphic loops — the same
kernel cloned across benchmarks with renamed registers, reordered
statements, or shifted base offsets.  Measuring each clone independently
wastes the measure stage's wall clock on work whose outcome is already
known bit-for-bit.  This module groups a suite's loops into equivalence
classes under the content keys of :mod:`repro.ir.canonical`:

* the **cost key** defines the *measured* classes: equal cost keys
  guarantee bit-identical ``per_entry_cycles`` at every unroll factor and
  scheduling regime, so the labelling pipeline measures one representative
  per class and fans the per-entry sweep back out to every member (total
  cycles are ``per_entry * entry_count``, the exact multiply the cost
  model performs — the fan-out is bit-identical to measuring each member).
* the **structural key** defines the looser trip-count-agnostic classes
  reported as ``class_merges``: loops that would be dedupable at equal
  trip counts.  It is also the exact check behind the optional LSH
  near-duplicate flagging.

The representative of each class is its first member in suite row order,
so the class list — and therefore the work-unit list and the journal
labels derived from it — is a pure function of the suite.

:func:`lsh_candidate_pairs` optionally runs the feature vectors through
:class:`repro.ml.lsh.LSHNearNeighbor` and reports bucket-cohabiting loop
pairs as near-duplicate *candidates*; :func:`build_dedup_index` exact-
checks them by structural-key equality.  The exact hashing already covers
every loop, so LSH is a diagnostic (how well would sublinear candidate
generation do?) rather than a correctness dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.extract import extract_features
from repro.instrument.report import DedupStats
from repro.ir.canonical import canonical_form
from repro.ir.loop import Loop
from repro.ir.program import Suite
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.ml.lsh import LSHNearNeighbor

#: Buckets larger than this are skipped during LSH pair enumeration (a
#: degenerate bucket holding most of the suite would produce a quadratic
#: pair blow-up while telling us nothing about *near* duplicates).
MAX_LSH_BUCKET = 128


@dataclass(frozen=True)
class LoopClass:
    """One measured equivalence class: loops with equal cost keys.

    ``representative``/``members`` are ``(benchmark_index, loop_index)``
    coordinates into the suite; the representative is the first member in
    suite row order and is the loop actually measured.
    """

    key: str  # cost key (SHA-256 hex)
    representative: tuple[int, int]
    members: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class DedupIndex:
    """The suite's dedup plan: classes, membership, and statistics."""

    classes: tuple[LoopClass, ...]
    class_of: dict[tuple[int, int], int]  # (bench, loop) -> class index
    stats: DedupStats

    def representative_loop(self, suite: Suite, class_index: int) -> Loop:
        bi, li = self.classes[class_index].representative
        return suite.benchmarks[bi].loops[li]


def _suite_loops(suite: Suite):
    for bi, benchmark in enumerate(suite.benchmarks):
        for li, loop in enumerate(benchmark.loops):
            yield (bi, li), loop


def lsh_candidate_pairs(
    suite: Suite,
    machine: MachineModel = ITANIUM2,
    lsh: LSHNearNeighbor | None = None,
) -> set[tuple[int, int]]:
    """Near-duplicate candidate pairs (flat row indices, ``a < b``).

    Loops are hashed by their 38-feature vectors; any two loops sharing a
    bucket in any table become a candidate pair.  Buckets larger than
    :data:`MAX_LSH_BUCKET` are skipped — they are not *near*-duplicate
    evidence, just feature-space collapse.
    """
    X = np.array(
        [extract_features(loop, machine) for _, loop in _suite_loops(suite)]
    )
    if lsh is None:
        lsh = LSHNearNeighbor()
    lsh.fit(X, np.zeros(len(X), dtype=np.int64))
    pairs: set[tuple[int, int]] = set()
    for table in lsh._tables:
        for rows in table.values():
            if len(rows) < 2 or len(rows) > MAX_LSH_BUCKET:
                continue
            for i, a in enumerate(rows):
                for b in rows[i + 1 :]:
                    pairs.add((a, b) if a < b else (b, a))
    return pairs


def build_dedup_index(
    suite: Suite,
    machine: MachineModel = ITANIUM2,
    use_lsh: bool = False,
) -> DedupIndex:
    """Group the suite's loops into content-addressed equivalence classes.

    Deterministic in suite row order: class indices, representatives, and
    member tuples depend only on the suite's content, never on scheduling.
    With ``use_lsh`` the statistics additionally report how many candidate
    pairs feature-space LSH would have flagged and how many of those the
    exact structural check confirms.
    """
    members: dict[str, list[tuple[int, int]]] = {}
    structural: list[str] = []
    for coord, loop in _suite_loops(suite):
        form = canonical_form(loop)
        members.setdefault(form.cost_key, []).append(coord)
        structural.append(form.structural_key)

    classes = tuple(
        LoopClass(key=key, representative=coords[0], members=tuple(coords))
        for key, coords in members.items()
    )
    class_of = {
        coord: index
        for index, cls in enumerate(classes)
        for coord in cls.members
    }

    n_loops = len(structural)
    lsh_pairs = 0
    lsh_confirmed = 0
    if use_lsh and n_loops:
        candidates = lsh_candidate_pairs(suite, machine)
        lsh_pairs = len(candidates)
        lsh_confirmed = sum(
            1 for a, b in candidates if structural[a] == structural[b]
        )
    stats = DedupStats(
        n_loops=n_loops,
        n_cost_classes=len(classes),
        n_structural_classes=len(set(structural)),
        class_merges=n_loops - len(set(structural)),
        cost_merges=n_loops - len(classes),
        lsh_candidate_pairs=lsh_pairs,
        lsh_confirmed_pairs=lsh_confirmed,
    )
    return DedupIndex(classes=classes, class_of=class_of, stats=stats)
