"""Whole-program speedup evaluation (the paper's Figures 4 and 5).

Protocol (Section 6.1): for each evaluated benchmark, train the classifiers
on every labelled loop *except* that benchmark's (leave-one-benchmark-out),
compile every loop with the predicted factor, and compare whole-program
runtimes against ORC's hand heuristic.  Programs are timed like the paper
times them — "the UNIX time command and the median of three trials" — i.e.
noise-free loop cycles plus the benchmark's serial time, wrapped in a small
whole-program measurement jitter.

The oracle column picks each loop's best *measured* factor, so (exactly as
the paper observes for 177.mesa, 181.mcf, and 186.crafty) a noisy training
set can make the oracle lose to a heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.heuristics.oracle import OracleHeuristic
from repro.heuristics.orc import ORCHeuristic
from repro.ir.program import Benchmark, Suite
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.ml.dataset import LoopDataset
from repro.ml.pairwise import make_tuned_pairwise_svm
from repro.ml.near_neighbor import NearNeighborClassifier
from repro.pipeline.measurements import MeasurementTable
from repro.workloads.spec_names import SPEC2000_FP_NAMES, SPEC2000_NAMES

#: Whole-program timing jitter (the `time` command's scale of noise).
PROGRAM_NOISE_SIGMA = 0.004


@dataclass(frozen=True)
class BenchmarkResult:
    """One benchmark's runtimes and improvements over the ORC baseline."""

    benchmark: str
    is_fp: bool
    runtimes: dict[str, float]
    improvements: dict[str, float]  # vs ORC, e.g. 0.05 == 5% faster


@dataclass(frozen=True)
class SpeedupReport:
    """Per-benchmark results plus suite-level aggregates."""

    results: tuple[BenchmarkResult, ...]
    swp: bool
    predictor_names: tuple[str, ...] = ("nn", "svm", "oracle")

    def mean_improvement(self, predictor: str, fp_only: bool = False) -> float:
        rows = [r for r in self.results if (r.is_fp or not fp_only)]
        return float(np.mean([r.improvements[predictor] for r in rows]))

    def wins(self, predictor: str) -> int:
        """Benchmarks on which the predictor beats ORC."""
        return sum(1 for r in self.results if r.improvements[predictor] > 0)

    def result_for(self, benchmark: str) -> BenchmarkResult:
        for result in self.results:
            if result.benchmark == benchmark:
                return result
        raise KeyError(benchmark)


@dataclass(frozen=True)
class EvaluationConfig:
    """Knobs for the speedup evaluation."""

    machine: MachineModel = ITANIUM2
    swp: bool = False
    feature_indices: np.ndarray | None = None
    benchmarks: tuple[str, ...] = SPEC2000_NAMES
    n_timing_runs: int = 3
    seed: int = 77


def _program_runtime(
    loop_cycles: float, serial_cycles: float, rng: np.random.Generator, n_runs: int
) -> float:
    """Median of ``n_runs`` whole-program timings."""
    base = loop_cycles + serial_cycles
    samples = base * rng.lognormal(0.0, PROGRAM_NOISE_SIGMA, size=n_runs)
    return float(np.median(samples))


def _serial_cycles(benchmark: Benchmark, baseline_loop_cycles: float) -> float:
    """Non-loop cycles, honoring an explicit figure when present and
    otherwise derived from the benchmark's loop fraction at the baseline."""
    if benchmark.serial_cycles > 0:
        return float(benchmark.serial_cycles)
    fraction = benchmark.loop_fraction
    return baseline_loop_cycles * (1.0 - fraction) / fraction


def evaluate_speedups(
    suite: Suite,
    table: MeasurementTable,
    dataset: LoopDataset,
    config: EvaluationConfig = EvaluationConfig(),
) -> SpeedupReport:
    """Figures 4/5: per-benchmark improvements of NN, SVM, and the oracle
    over ORC's heuristic, with leave-one-benchmark-out training."""
    orc = ORCHeuristic(machine=config.machine, swp=config.swp)
    oracle = OracleHeuristic.from_dataset(dataset)
    rng = np.random.default_rng(config.seed)
    feature_idx = config.feature_indices

    results: list[BenchmarkResult] = []
    for name in config.benchmarks:
        benchmark = suite.benchmark_by_name(name)
        rows = table.rows_for_benchmark(name)
        if len(rows) == 0:
            continue

        train = dataset.exclude_benchmark(name)
        X_train = train.X if feature_idx is None else train.X[:, feature_idx]
        nn = NearNeighborClassifier().fit(X_train, train.labels)
        svm = make_tuned_pairwise_svm()
        svm.fit(X_train, train.labels)

        X_rows = table.X[rows] if feature_idx is None else table.X[rows][:, feature_idx]
        predictions = {
            "nn": np.asarray(nn.predict(X_rows)),
            "svm": np.asarray(svm.predict(X_rows)),
            "orc": np.array(
                [orc.predict_loop(benchmark.loop_by_name(str(table.loop_names[r]))) for r in rows]
            ),
            "oracle": np.array(
                [
                    oracle.measured_best.get(str(table.loop_names[r]), 1)
                    for r in rows
                ]
            ),
        }

        loop_cycles = {
            key: float(table.true_cycles[rows, factors - 1].sum())
            for key, factors in predictions.items()
        }
        serial = _serial_cycles(benchmark, loop_cycles["orc"])
        runtimes = {
            key: _program_runtime(cycles, serial, rng, config.n_timing_runs)
            for key, cycles in loop_cycles.items()
        }
        improvements = {
            key: runtimes["orc"] / runtimes[key] - 1.0
            for key in ("nn", "svm", "oracle")
        }
        results.append(
            BenchmarkResult(
                benchmark=name,
                is_fp=name in SPEC2000_FP_NAMES,
                runtimes=runtimes,
                improvements=improvements,
            )
        )
    return SpeedupReport(results=tuple(results), swp=config.swp)
