"""The labelling pipeline: measure every loop at every unroll factor.

Reproduces the paper's data-collection protocol (Sections 4.4-4.6):

1. compile every unrollable loop at unroll factors 1..8 (here: the cost
   simulator times each configuration);
2. run each configuration 30 times and keep the median cumulative cycles
   per loop (the noise model supplies the 30 samples);
3. keep only loops that run for at least 50,000 cycles — short loops are
   measurement noise magnets;
4. keep only loops whose best factor is "measurably better than the average
   (1.05x) over all unroll factors" — flat loops carry no signal;
5. label each surviving loop with its best measured factor and pair the
   label with the loop's 38 static features.

:func:`measure_suite` produces the *unfiltered* :class:`MeasurementTable`
(steps 1-2 for every loop); :func:`label_suite` applies steps 3-5 on top.

Measurement decomposes into independent **work units** — one (benchmark,
unroll factor) configuration per unit, mirroring the paper's one-binary-
per-factor protocol — so the suite can fan out over a process pool
(``jobs > 1``) while staying bit-identical to a serial run: every unit
derives its RNG from its own :class:`numpy.random.SeedSequence` child, and
the merge assembles results by (benchmark, factor) index, never by
completion order.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.features.extract import extract_features
from repro.instrument.report import MeasurementRollup, UnitTiming
from repro.ir.loop import Loop
from repro.ir.program import Benchmark, Suite
from repro.ir.types import MAX_UNROLL
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.ml.dataset import LoopDataset
from repro.pipeline.measurements import MeasurementTable
from repro.simulate.executor import (
    CostModel,
    reset_shared_cost_models,
    shared_cost_model,
)
from repro.simulate.noise import DEFAULT_NOISE, NoiseModel


@dataclass(frozen=True)
class LabelingConfig:
    """Knobs of the labelling protocol (paper defaults)."""

    seed: int = 20050320
    swp: bool = False
    machine: MachineModel = ITANIUM2
    noise: NoiseModel = DEFAULT_NOISE
    n_runs: int = 30
    min_cycles: float = 50_000.0
    min_benefit: float = 1.05


@dataclass
class LabelingStats:
    """What the filters did — reported alongside every dataset."""

    n_loops_total: int = 0
    n_below_cycle_floor: int = 0
    n_flat: int = 0
    n_labeled: int = 0
    labels_histogram: dict[int, int] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.n_loops_total} loops measured; "
            f"{self.n_below_cycle_floor} below the cycle floor, "
            f"{self.n_flat} flat (< min benefit), {self.n_labeled} labelled"
        )


def measure_loop_cycles(
    loop: Loop,
    cost_model: CostModel,
    noise: NoiseModel,
    rng: np.random.Generator,
    n_runs: int,
) -> tuple[np.ndarray, np.ndarray]:
    """``(measured_median, true)`` cycles for factors 1..8."""
    measured = np.empty(MAX_UNROLL)
    true = np.empty(MAX_UNROLL)
    for factor in range(1, MAX_UNROLL + 1):
        true_cycles = cost_model.loop_cost(loop, factor).total_cycles
        true[factor - 1] = true_cycles
        measured[factor - 1] = noise.median_measurement(
            true_cycles, loop.entry_count, rng, n=n_runs
        )
    return measured, true


def resolve_jobs(jobs: int | None = None) -> int:
    """Degree of measurement parallelism.

    ``None`` consults the ``REPRO_JOBS`` environment variable and falls
    back to serial (1), so tests and library callers stay reproducible by
    default while the CLI and benches can opt in fleet-wide.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class UnitResult:
    """Output of one measurement work unit: every loop of one benchmark at
    one unroll factor, plus worker-attribution for the timing rollup."""

    bench_index: int
    factor: int
    measured: np.ndarray  # (n_loops,) median measured cycles
    true_cycles: np.ndarray  # (n_loops,) noise-free cycles
    worker: int
    seconds: float


def measure_benchmark_factor(
    benchmark: Benchmark,
    bench_index: int,
    factor: int,
    config: LabelingConfig,
    seed: np.random.SeedSequence,
    cost_model: CostModel | None = None,
) -> UnitResult:
    """Execute one work unit (the parallel pipeline's worker entry point).

    Mirrors the paper's protocol at its natural granularity: one binary —
    every loop of ``benchmark`` compiled at ``factor`` — timed over
    ``config.n_runs`` runs.  The unit owns an RNG derived from its own seed
    child, so results are independent of which worker runs it and of the
    order units complete in.
    """
    start = time.perf_counter()
    if cost_model is None:
        cost_model = shared_cost_model(config.machine, config.swp)
    rng = np.random.default_rng(seed)
    n = benchmark.n_loops
    measured = np.empty(n)
    true = np.empty(n)
    for i, loop in enumerate(benchmark.loops):
        true_cycles = cost_model.loop_cost(loop, factor).total_cycles
        true[i] = true_cycles
        measured[i] = config.noise.median_measurement(
            true_cycles, loop.entry_count, rng, n=config.n_runs
        )
    return UnitResult(
        bench_index=bench_index,
        factor=factor,
        measured=measured,
        true_cycles=true,
        worker=os.getpid(),
        seconds=time.perf_counter() - start,
    )


def _unit_seeds(seed: int, n_benchmarks: int) -> list[list[np.random.SeedSequence]]:
    """One SeedSequence child per (benchmark, factor) work unit."""
    root = np.random.SeedSequence(seed)
    return [bench_seq.spawn(MAX_UNROLL) for bench_seq in root.spawn(n_benchmarks)]


def measure_suite(
    suite: Suite,
    config: LabelingConfig = LabelingConfig(),
    jobs: int | None = None,
    rollup: MeasurementRollup | None = None,
) -> MeasurementTable:
    """Steps 1-2 of the protocol over every loop in the suite.

    Args:
        suite: the benchmark suite to measure.
        config: labelling protocol knobs.
        jobs: worker processes to fan the work units over; ``None`` reads
            ``REPRO_JOBS`` and defaults to serial.  Results are
            bit-identical for every value of ``jobs``.
        rollup: optional sink for per-unit worker timings.
    """
    jobs = resolve_jobs(jobs)
    n = suite.n_loops
    benchmarks = suite.benchmarks
    X = np.empty((n, 38))
    measured = np.empty((n, MAX_UNROLL))
    true = np.empty((n, MAX_UNROLL))
    names: list[str] = []
    benchs: list[str] = []
    suites: list[str] = []
    langs: list[str] = []
    entries = np.empty(n, dtype=np.int64)

    # Static (factor-independent) columns are extracted in the parent; only
    # the per-factor timing work fans out.
    row_starts: list[int] = []
    row = 0
    for benchmark in benchmarks:
        row_starts.append(row)
        for loop in benchmark.loops:
            X[row] = extract_features(loop, config.machine)
            names.append(loop.name)
            benchs.append(benchmark.name)
            suites.append(benchmark.suite)
            langs.append(loop.language.name)
            entries[row] = loop.entry_count
            row += 1

    seeds = _unit_seeds(config.seed, len(benchmarks))
    results: dict[tuple[int, int], UnitResult] = {}
    if jobs == 1:
        # Serial: one private cost model for the whole suite (cross-factor
        # analysis caches, no cross-call state).
        cost_model = CostModel(machine=config.machine, swp=config.swp)
        for bi, benchmark in enumerate(benchmarks):
            for factor in range(1, MAX_UNROLL + 1):
                results[(bi, factor)] = measure_benchmark_factor(
                    benchmark, bi, factor, config, seeds[bi][factor - 1], cost_model
                )
    else:
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=reset_shared_cost_models
        ) as pool:
            futures = [
                pool.submit(
                    measure_benchmark_factor,
                    benchmark, bi, factor, config, seeds[bi][factor - 1],
                )
                for bi, benchmark in enumerate(benchmarks)
                for factor in range(1, MAX_UNROLL + 1)
            ]
            for future in futures:
                unit = future.result()
                results[(unit.bench_index, unit.factor)] = unit

    # Deterministic merge: results land by (benchmark, factor) index, so
    # the table is bit-identical however the units were scheduled.
    for bi, benchmark in enumerate(benchmarks):
        lo = row_starts[bi]
        hi = lo + benchmark.n_loops
        for factor in range(1, MAX_UNROLL + 1):
            unit = results[(bi, factor)]
            measured[lo:hi, factor - 1] = unit.measured
            true[lo:hi, factor - 1] = unit.true_cycles
            if rollup is not None:
                rollup.record(
                    UnitTiming(
                        benchmark=benchmark.name,
                        factor=factor,
                        worker=unit.worker,
                        n_loops=benchmark.n_loops,
                        seconds=unit.seconds,
                    )
                )

    return MeasurementTable(
        X=X,
        measured=measured,
        true_cycles=true,
        loop_names=np.array(names),
        benchmarks=np.array(benchs),
        suites=np.array(suites),
        languages=np.array(langs),
        entry_counts=entries,
        swp=config.swp,
    )


def stats_from_table(table: MeasurementTable, config: LabelingConfig) -> LabelingStats:
    """Filter statistics for a measured table."""
    stats = LabelingStats(n_loops_total=len(table))
    long_enough = table.measured[:, 0] >= config.min_cycles
    best = table.measured.min(axis=1)
    informative = table.measured.mean(axis=1) / best >= config.min_benefit
    stats.n_below_cycle_floor = int(np.sum(~long_enough))
    stats.n_flat = int(np.sum(long_enough & ~informative))
    mask = long_enough & informative
    stats.n_labeled = int(mask.sum())
    labels = np.argmin(table.measured[mask], axis=1) + 1
    for label in labels:
        stats.labels_histogram[int(label)] = stats.labels_histogram.get(int(label), 0) + 1
    return stats


def label_suite(
    suite: Suite, config: LabelingConfig = LabelingConfig()
) -> tuple[LoopDataset, LabelingStats]:
    """The full protocol: measure, filter, label."""
    table = measure_suite(suite, config)
    stats = stats_from_table(table, config)
    dataset = table.to_dataset(config.min_cycles, config.min_benefit)
    return dataset, stats
