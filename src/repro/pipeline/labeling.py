"""The labelling pipeline: measure every loop at every unroll factor.

Reproduces the paper's data-collection protocol (Sections 4.4-4.6):

1. compile every unrollable loop at unroll factors 1..8 (here: the cost
   simulator times each configuration);
2. run each configuration 30 times and keep the median cumulative cycles
   per loop (the noise model supplies the 30 samples);
3. keep only loops that run for at least 50,000 cycles — short loops are
   measurement noise magnets;
4. keep only loops whose best factor is "measurably better than the average
   (1.05x) over all unroll factors" — flat loops carry no signal;
5. label each surviving loop with its best measured factor and pair the
   label with the loop's 38 static features.

:func:`measure_suite` produces the *unfiltered* :class:`MeasurementTable`
(steps 1-2 for every loop); :func:`label_suite` applies steps 3-5 on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.features.extract import extract_features
from repro.ir.loop import Loop
from repro.ir.program import Suite
from repro.ir.types import MAX_UNROLL
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.ml.dataset import LoopDataset
from repro.pipeline.measurements import MeasurementTable
from repro.simulate.executor import CostModel
from repro.simulate.noise import DEFAULT_NOISE, NoiseModel


@dataclass(frozen=True)
class LabelingConfig:
    """Knobs of the labelling protocol (paper defaults)."""

    seed: int = 20050320
    swp: bool = False
    machine: MachineModel = ITANIUM2
    noise: NoiseModel = DEFAULT_NOISE
    n_runs: int = 30
    min_cycles: float = 50_000.0
    min_benefit: float = 1.05


@dataclass
class LabelingStats:
    """What the filters did — reported alongside every dataset."""

    n_loops_total: int = 0
    n_below_cycle_floor: int = 0
    n_flat: int = 0
    n_labeled: int = 0
    labels_histogram: dict[int, int] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.n_loops_total} loops measured; "
            f"{self.n_below_cycle_floor} below the cycle floor, "
            f"{self.n_flat} flat (< min benefit), {self.n_labeled} labelled"
        )


def measure_loop_cycles(
    loop: Loop,
    cost_model: CostModel,
    noise: NoiseModel,
    rng: np.random.Generator,
    n_runs: int,
) -> tuple[np.ndarray, np.ndarray]:
    """``(measured_median, true)`` cycles for factors 1..8."""
    measured = np.empty(MAX_UNROLL)
    true = np.empty(MAX_UNROLL)
    for factor in range(1, MAX_UNROLL + 1):
        true_cycles = cost_model.loop_cost(loop, factor).total_cycles
        true[factor - 1] = true_cycles
        measured[factor - 1] = noise.median_measurement(
            true_cycles, loop.entry_count, rng, n=n_runs
        )
    return measured, true


def measure_suite(suite: Suite, config: LabelingConfig = LabelingConfig()) -> MeasurementTable:
    """Steps 1-2 of the protocol over every loop in the suite."""
    cost_model = CostModel(machine=config.machine, swp=config.swp)
    n = suite.n_loops
    X = np.empty((n, 38))
    measured = np.empty((n, MAX_UNROLL))
    true = np.empty((n, MAX_UNROLL))
    names: list[str] = []
    benchs: list[str] = []
    suites: list[str] = []
    langs: list[str] = []
    entries = np.empty(n, dtype=np.int64)

    row = 0
    seeds = np.random.SeedSequence(config.seed).spawn(len(suite.benchmarks))
    for benchmark, seed in zip(suite.benchmarks, seeds):
        rng = np.random.default_rng(seed)
        for loop in benchmark.loops:
            measured[row], true[row] = measure_loop_cycles(
                loop, cost_model, config.noise, rng, config.n_runs
            )
            X[row] = extract_features(loop, config.machine)
            names.append(loop.name)
            benchs.append(benchmark.name)
            suites.append(benchmark.suite)
            langs.append(loop.language.name)
            entries[row] = loop.entry_count
            row += 1

    return MeasurementTable(
        X=X,
        measured=measured,
        true_cycles=true,
        loop_names=np.array(names),
        benchmarks=np.array(benchs),
        suites=np.array(suites),
        languages=np.array(langs),
        entry_counts=entries,
        swp=config.swp,
    )


def stats_from_table(table: MeasurementTable, config: LabelingConfig) -> LabelingStats:
    """Filter statistics for a measured table."""
    stats = LabelingStats(n_loops_total=len(table))
    long_enough = table.measured[:, 0] >= config.min_cycles
    best = table.measured.min(axis=1)
    informative = table.measured.mean(axis=1) / best >= config.min_benefit
    stats.n_below_cycle_floor = int(np.sum(~long_enough))
    stats.n_flat = int(np.sum(long_enough & ~informative))
    mask = long_enough & informative
    stats.n_labeled = int(mask.sum())
    labels = np.argmin(table.measured[mask], axis=1) + 1
    for label in labels:
        stats.labels_histogram[int(label)] = stats.labels_histogram.get(int(label), 0) + 1
    return stats


def label_suite(
    suite: Suite, config: LabelingConfig = LabelingConfig()
) -> tuple[LoopDataset, LabelingStats]:
    """The full protocol: measure, filter, label."""
    table = measure_suite(suite, config)
    stats = stats_from_table(table, config)
    dataset = table.to_dataset(config.min_cycles, config.min_benefit)
    return dataset, stats
