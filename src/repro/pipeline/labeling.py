"""The labelling pipeline: measure every loop at every unroll factor.

Reproduces the paper's data-collection protocol (Sections 4.4-4.6):

1. compile every unrollable loop at unroll factors 1..8 (here: the cost
   simulator times each configuration);
2. run each configuration 30 times and keep the median cumulative cycles
   per loop (the noise model supplies the 30 samples);
3. keep only loops that run for at least 50,000 cycles — short loops are
   measurement noise magnets;
4. keep only loops whose best factor is "measurably better than the average
   (1.05x) over all unroll factors" — flat loops carry no signal;
5. label each surviving loop with its best measured factor and pair the
   label with the loop's 38 static features.

:func:`measure_suite` produces the *unfiltered* :class:`MeasurementTable`
(steps 1-2 for every loop); :func:`label_suite` applies steps 3-5 on top.

Measurement decomposes into independent **work units** — one (benchmark,
unroll factor) configuration per unit, mirroring the paper's one-binary-
per-factor protocol — so the suite can fan out over a process pool
(``jobs > 1``) while staying bit-identical to a serial run: every unit
derives its RNG from its own :class:`numpy.random.SeedSequence` child, and
the merge assembles results by (benchmark, factor) index, never by
completion order.

Both fan-outs run on the fault-tolerant executor
(:func:`repro.resilience.run_units`): units are retried with deterministic
backoff, timed out, quarantined when they fail every attempt (the merge
NaN-fills their rows instead of aborting the run), re-executed serially
when a worker death breaks the pool, and — given a
:class:`~repro.resilience.CheckpointJournal` — committed as they complete
so a killed run resumes bit-identically.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.features.extract import extract_features
from repro.instrument.report import DedupStats, MeasurementRollup, UnitTiming
from repro.ir.loop import Loop
from repro.ir.program import Benchmark, Suite
from repro.ir.types import MAX_UNROLL
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.ml.dataset import LoopDataset
from repro.pipeline.dedup import DedupIndex, build_dedup_index
from repro.pipeline.measurements import MeasurementTable
from repro.resilience.executor import (
    DEFAULT_RESILIENCE,
    ResilienceConfig,
    UnitTask,
    run_units,
)
from repro.resilience.journal import CheckpointJournal
from repro.simulate.executor import (
    AnalysisCache,
    CostModel,
    reset_shared_cost_models,
    shared_cost_model,
)
from repro.simulate.noise import DEFAULT_NOISE, NoiseModel


@dataclass(frozen=True)
class LabelingConfig:
    """Knobs of the labelling protocol (paper defaults).

    ``engine`` selects the cost-model implementation (``"fast"`` and
    ``"incremental"`` are bit-identical to ``"reference"``; the latter
    exists as the bench baseline).  ``batched_noise`` selects the noise
    stream contract: one ``(n_loops, n_runs)`` block draw per work unit
    (the default) versus the legacy per-loop scalar draws.  The two
    contracts consume the generator in different orders, so
    ``batched_noise`` changes measured medians and participates in the
    measurement cache key; ``engine`` does not.

    ``dedup`` switches the fan-out to content-addressed work units: one
    representative per cost-key equivalence class
    (:func:`repro.pipeline.dedup.build_dedup_index`) is measured across
    all factors and the per-entry sweep is fanned back out to every class
    member, replaying each (benchmark, factor) unit's own noise stream —
    the resulting tables are bit-identical to a dedup-off run, so
    ``dedup`` is excluded from the measurement cache key too.
    """

    seed: int = 20050320
    swp: bool = False
    machine: MachineModel = ITANIUM2
    noise: NoiseModel = DEFAULT_NOISE
    n_runs: int = 30
    min_cycles: float = 50_000.0
    min_benefit: float = 1.05
    engine: str = "fast"
    batched_noise: bool = True
    dedup: bool = False


@dataclass
class LabelingStats:
    """What the filters did — reported alongside every dataset."""

    n_loops_total: int = 0
    n_below_cycle_floor: int = 0
    n_flat: int = 0
    n_labeled: int = 0
    labels_histogram: dict[int, int] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.n_loops_total} loops measured; "
            f"{self.n_below_cycle_floor} below the cycle floor, "
            f"{self.n_flat} flat (< min benefit), {self.n_labeled} labelled"
        )


def measure_loop_cycles(
    loop: Loop,
    cost_model: CostModel,
    noise: NoiseModel,
    rng: np.random.Generator,
    n_runs: int,
) -> tuple[np.ndarray, np.ndarray]:
    """``(measured_median, true)`` cycles for factors 1..8."""
    measured = np.empty(MAX_UNROLL)
    true = np.empty(MAX_UNROLL)
    for factor in range(1, MAX_UNROLL + 1):
        true_cycles = cost_model.loop_cost(loop, factor).total_cycles
        true[factor - 1] = true_cycles
        measured[factor - 1] = noise.median_measurement(
            true_cycles, loop.entry_count, rng, n=n_runs
        )
    return measured, true


def resolve_jobs(jobs: int | None = None) -> int:
    """Degree of measurement parallelism.

    ``None`` consults the ``REPRO_JOBS`` environment variable and falls
    back to serial (1), so tests and library callers stay reproducible by
    default while the CLI and benches can opt in fleet-wide.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class UnitResult:
    """Output of one measurement work unit: every loop of one benchmark at
    one unroll factor, plus worker-attribution and analysis-cache traffic
    for the timing rollup."""

    bench_index: int
    factor: int
    measured: np.ndarray  # (n_loops,) median measured cycles
    true_cycles: np.ndarray  # (n_loops,) noise-free cycles
    worker: int
    seconds: float
    analysis_hits: int = 0
    analysis_misses: int = 0


def unit_to_json(unit: UnitResult) -> dict:
    """A :class:`UnitResult` as a JSON-safe dict (journal payload format).

    Floats survive the round trip exactly — ``json`` emits shortest-repr
    doubles — so a resumed run is bit-identical to an uninterrupted one.
    """
    return {
        "bench_index": unit.bench_index,
        "factor": unit.factor,
        "measured": [float(v) for v in unit.measured],
        "true_cycles": [float(v) for v in unit.true_cycles],
        "worker": unit.worker,
        "seconds": unit.seconds,
        "analysis_hits": unit.analysis_hits,
        "analysis_misses": unit.analysis_misses,
    }


def unit_from_json(payload: dict) -> UnitResult:
    """Inverse of :func:`unit_to_json`."""
    return UnitResult(
        bench_index=int(payload["bench_index"]),
        factor=int(payload["factor"]),
        measured=np.asarray(payload["measured"], dtype=np.float64),
        true_cycles=np.asarray(payload["true_cycles"], dtype=np.float64),
        worker=int(payload["worker"]),
        seconds=float(payload["seconds"]),
        analysis_hits=int(payload["analysis_hits"]),
        analysis_misses=int(payload["analysis_misses"]),
    )


def _pair_to_json(pair: tuple[UnitResult, UnitResult]) -> dict:
    return {"off": unit_to_json(pair[0]), "on": unit_to_json(pair[1])}


def _pair_from_json(payload: dict) -> tuple[UnitResult, UnitResult]:
    return unit_from_json(payload["off"]), unit_from_json(payload["on"])


def _unit_cost_model(config: LabelingConfig) -> CostModel:
    """The cost model a work unit uses when the caller supplies none."""
    if config.engine == "reference":
        return CostModel(machine=config.machine, swp=config.swp, engine="reference")
    return shared_cost_model(config.machine, config.swp, config.engine)


def _class_engine(config: LabelingConfig) -> str:
    """Engine of the class sweeps: incremental (bit-identical to "fast",
    and the sweep's ascending factor order is exactly what it exploits)
    unless the caller explicitly asked for the from-scratch reference."""
    return "reference" if config.engine == "reference" else "incremental"


def _class_cost_model(config: LabelingConfig) -> CostModel:
    """The cost model a dedup class sweep uses when the caller supplies
    none (the pool path; serial runs bind a private model instead)."""
    engine = _class_engine(config)
    if engine == "reference":
        return CostModel(machine=config.machine, swp=config.swp, engine="reference")
    return shared_cost_model(config.machine, config.swp, engine)


def measure_benchmark_factor(
    benchmark: Benchmark,
    bench_index: int,
    factor: int,
    config: LabelingConfig,
    seed: np.random.SeedSequence,
    cost_model: CostModel | None = None,
) -> UnitResult:
    """Execute one work unit (the parallel pipeline's worker entry point).

    Mirrors the paper's protocol at its natural granularity: one binary —
    every loop of ``benchmark`` compiled at ``factor`` — timed over
    ``config.n_runs`` runs.  The unit owns an RNG derived from its own seed
    child, so results are independent of which worker runs it and of the
    order units complete in.

    With ``config.batched_noise`` (the default) the unit draws one
    ``(n_loops, n_runs)`` sample batch per the noise module's stream
    contract; otherwise it replays the legacy per-loop scalar draws.
    """
    start = time.perf_counter()
    if cost_model is None:
        cost_model = _unit_cost_model(config)
    cache = cost_model.analysis
    hits0, misses0 = cache.hits, cache.misses
    rng = np.random.default_rng(seed)
    n = benchmark.n_loops
    true = np.empty(n)
    entry_counts = np.empty(n, dtype=np.int64)
    for i, loop in enumerate(benchmark.loops):
        true[i] = cost_model.loop_cost(loop, factor).total_cycles
        entry_counts[i] = loop.entry_count
    if config.batched_noise:
        measured = config.noise.batch_medians(true, entry_counts, rng, n=config.n_runs)
    else:
        measured = np.empty(n)
        for i in range(n):
            measured[i] = config.noise.median_measurement(
                true[i], int(entry_counts[i]), rng, n=config.n_runs
            )
    return UnitResult(
        bench_index=bench_index,
        factor=factor,
        measured=measured,
        true_cycles=true,
        worker=os.getpid(),
        seconds=time.perf_counter() - start,
        analysis_hits=cache.hits - hits0,
        analysis_misses=cache.misses - misses0,
    )


def measure_benchmark_factor_pair(
    benchmark: Benchmark,
    bench_index: int,
    factor: int,
    config_off: LabelingConfig,
    config_on: LabelingConfig,
    seed: np.random.SeedSequence,
    cost_models: tuple[CostModel, CostModel] | None = None,
) -> tuple[UnitResult, UnitResult]:
    """One work unit measured in both scheduling regimes back to back.

    The SWP-off and SWP-on regimes share every analysis (unroll, cleanup,
    dependences, scheduler tables): running them in one unit keeps the
    shared :class:`~repro.simulate.executor.AnalysisCache` working set down
    to a single benchmark's loops, so the second regime's analyses are all
    hits.  Each regime's RNG is rebuilt from the same seed child, making
    the pair bit-identical to two independent single-regime runs.
    """
    if cost_models is None:
        cost_models = (_unit_cost_model(config_off), _unit_cost_model(config_on))
    off = measure_benchmark_factor(
        benchmark, bench_index, factor, config_off, seed, cost_models[0]
    )
    on = measure_benchmark_factor(
        benchmark, bench_index, factor, config_on, seed, cost_models[1]
    )
    return off, on


@dataclass(frozen=True)
class ClassUnitResult:
    """Output of one dedup work unit: the representative loop of one
    cost-key equivalence class swept across every unroll factor.

    ``per_entry`` holds noise-free cycles per loop entry (factor 1..8);
    totals and measurement noise are reconstructed per member during
    fan-out.  The incremental counters report how much cross-factor
    analysis the sweep reused."""

    class_key: str
    per_entry: np.ndarray  # (MAX_UNROLL,) noise-free cycles per entry
    worker: int
    seconds: float
    analysis_hits: int = 0
    analysis_misses: int = 0
    incremental_hits: int = 0
    incremental_misses: int = 0


def class_unit_to_json(unit: ClassUnitResult) -> dict:
    """A :class:`ClassUnitResult` as a JSON-safe dict (journal payload).

    The equivalence-class key rides along explicitly (it is also the
    journal label), so a resumed dedup run can neither re-measure a
    completed class nor fan a payload out to the wrong members.
    """
    return {
        "class_key": unit.class_key,
        "per_entry": [float(v) for v in unit.per_entry],
        "worker": unit.worker,
        "seconds": unit.seconds,
        "analysis_hits": unit.analysis_hits,
        "analysis_misses": unit.analysis_misses,
        "incremental_hits": unit.incremental_hits,
        "incremental_misses": unit.incremental_misses,
    }


def class_unit_from_json(payload: dict) -> ClassUnitResult:
    """Inverse of :func:`class_unit_to_json`."""
    return ClassUnitResult(
        class_key=str(payload["class_key"]),
        per_entry=np.asarray(payload["per_entry"], dtype=np.float64),
        worker=int(payload["worker"]),
        seconds=float(payload["seconds"]),
        analysis_hits=int(payload["analysis_hits"]),
        analysis_misses=int(payload["analysis_misses"]),
        incremental_hits=int(payload["incremental_hits"]),
        incremental_misses=int(payload["incremental_misses"]),
    )


def _class_pair_to_json(pair: tuple[ClassUnitResult, ClassUnitResult]) -> dict:
    return {"off": class_unit_to_json(pair[0]), "on": class_unit_to_json(pair[1])}


def _class_pair_from_json(payload: dict) -> tuple[ClassUnitResult, ClassUnitResult]:
    return class_unit_from_json(payload["off"]), class_unit_from_json(payload["on"])


def measure_class(
    loop: Loop,
    class_key: str,
    config: LabelingConfig,
    cost_model: CostModel | None = None,
) -> ClassUnitResult:
    """Execute one dedup work unit: sweep the class representative across
    factors 1..8 and return the noise-free per-entry cycle vector.

    Noise is deliberately absent here — each *member's* measurement noise
    is replayed during fan-out from that member's own (benchmark, factor)
    seed child, so the assembled table is bit-identical to a dedup-off
    run regardless of how loops were grouped into classes.
    """
    start = time.perf_counter()
    if cost_model is None:
        cost_model = _class_cost_model(config)
    cache = cost_model.analysis
    hits0, misses0 = cache.hits, cache.misses
    inc_hits0 = cost_model.incremental_hits
    inc_misses0 = cost_model.incremental_misses
    per_entry = np.empty(MAX_UNROLL)
    for factor in range(1, MAX_UNROLL + 1):
        per_entry[factor - 1] = cost_model.loop_cost(loop, factor).per_entry_cycles
    return ClassUnitResult(
        class_key=class_key,
        per_entry=per_entry,
        worker=os.getpid(),
        seconds=time.perf_counter() - start,
        analysis_hits=cache.hits - hits0,
        analysis_misses=cache.misses - misses0,
        incremental_hits=cost_model.incremental_hits - inc_hits0,
        incremental_misses=cost_model.incremental_misses - inc_misses0,
    )


def measure_class_pair(
    loop: Loop,
    class_key: str,
    config_off: LabelingConfig,
    config_on: LabelingConfig,
    cost_models: tuple[CostModel, CostModel] | None = None,
) -> tuple[ClassUnitResult, ClassUnitResult]:
    """One dedup work unit swept in both scheduling regimes back to back
    (the class-level analogue of :func:`measure_benchmark_factor_pair`)."""
    if cost_models is None:
        cost_models = (_class_cost_model(config_off), _class_cost_model(config_on))
    off = measure_class(loop, class_key, config_off, cost_models[0])
    on = measure_class(loop, class_key, config_on, cost_models[1])
    return off, on


def _unit_seeds(seed: int, n_benchmarks: int) -> list[list[np.random.SeedSequence]]:
    """One SeedSequence child per (benchmark, factor) work unit."""
    root = np.random.SeedSequence(seed)
    return [bench_seq.spawn(MAX_UNROLL) for bench_seq in root.spawn(n_benchmarks)]


class _TableAssembly:
    """Static (factor-independent) columns plus the deterministic merge.

    The parent process extracts features and provenance once; work units
    only produce per-factor timings, which :meth:`merge` lands by
    (benchmark, factor) index — so the assembled table is bit-identical
    however the units were scheduled.  A quarantined unit (one that failed
    every retry) leaves NaN in its (benchmark, factor) cells: the run
    degrades to a table with holes instead of aborting, and the labelling
    filters naturally drop the affected loops."""

    def __init__(self, suite: Suite, config: LabelingConfig):
        n = suite.n_loops
        self.benchmarks = suite.benchmarks
        self.X = np.empty((n, 38))
        self.measured = np.empty((n, MAX_UNROLL))
        self.true = np.empty((n, MAX_UNROLL))
        self.names: list[str] = []
        self.benchs: list[str] = []
        self.suites: list[str] = []
        self.langs: list[str] = []
        self.entries = np.empty(n, dtype=np.int64)
        self.row_starts: list[int] = []
        row = 0
        for benchmark in self.benchmarks:
            self.row_starts.append(row)
            for loop in benchmark.loops:
                self.X[row] = extract_features(loop, config.machine)
                self.names.append(loop.name)
                self.benchs.append(benchmark.name)
                self.suites.append(benchmark.suite)
                self.langs.append(loop.language.name)
                self.entries[row] = loop.entry_count
                row += 1

    def merge(
        self,
        results: dict[tuple[int, int], UnitResult],
        rollup: MeasurementRollup | None,
        swp: bool,
    ) -> MeasurementTable:
        for bi, benchmark in enumerate(self.benchmarks):
            lo = self.row_starts[bi]
            hi = lo + benchmark.n_loops
            for factor in range(1, MAX_UNROLL + 1):
                unit = results.get((bi, factor))
                if unit is None:  # quarantined after exhausting retries
                    self.measured[lo:hi, factor - 1] = np.nan
                    self.true[lo:hi, factor - 1] = np.nan
                    continue
                self.measured[lo:hi, factor - 1] = unit.measured
                self.true[lo:hi, factor - 1] = unit.true_cycles
                if rollup is not None:
                    rollup.record(
                        UnitTiming(
                            benchmark=benchmark.name,
                            factor=factor,
                            worker=unit.worker,
                            n_loops=benchmark.n_loops,
                            seconds=unit.seconds,
                            analysis_hits=unit.analysis_hits,
                            analysis_misses=unit.analysis_misses,
                        )
                    )
        return MeasurementTable(
            X=self.X,
            measured=self.measured,
            true_cycles=self.true,
            loop_names=np.array(self.names),
            benchmarks=np.array(self.benchs),
            suites=np.array(self.suites),
            languages=np.array(self.langs),
            entry_counts=self.entries,
            swp=swp,
        )


def _bind_serial(benchmark, bi, factor, config, seed, cost_model):
    """Serial-path closure over the run-wide private cost model (not
    picklable, and must not be: only the serial executor calls it)."""
    return lambda: measure_benchmark_factor(
        benchmark, bi, factor, config, seed, cost_model
    )


def _bind_serial_class(loop, class_key, config, cost_model):
    return lambda: measure_class(loop, class_key, config, cost_model)


def _bind_serial_class_pair(loop, class_key, config_off, config_on, models):
    return lambda: measure_class_pair(loop, class_key, config_off, config_on, models)


def _fan_out(
    suite: Suite,
    config: LabelingConfig,
    index: DedupIndex,
    class_results: dict[int, ClassUnitResult],
    seeds: list[list[np.random.SeedSequence]],
) -> dict[tuple[int, int], UnitResult]:
    """Expand class sweeps into synthetic per-(benchmark, factor) units.

    Each member row's true cycles are ``per_entry * entry_count`` — the
    exact multiply the cost model performs — and each (benchmark, factor)
    unit's noise stream is replayed from its own seed child exactly as
    :func:`measure_benchmark_factor` would consume it, so the merge below
    is bit-identical to a dedup-off run.  A quarantined class leaves NaN
    in its members' true cycles; the noise contract propagates the NaN
    per row without disturbing the other rows' draws.
    """
    results: dict[tuple[int, int], UnitResult] = {}
    for bi, benchmark in enumerate(suite.benchmarks):
        n = benchmark.n_loops
        entry_counts = np.array(
            [loop.entry_count for loop in benchmark.loops], dtype=np.int64
        )
        class_ids = [index.class_of[(bi, li)] for li in range(n)]
        for factor in range(1, MAX_UNROLL + 1):
            true = np.empty(n)
            for i, ci in enumerate(class_ids):
                unit = class_results.get(ci)
                if unit is None:  # the class was quarantined
                    true[i] = np.nan
                else:
                    true[i] = unit.per_entry[factor - 1] * entry_counts[i]
            rng = np.random.default_rng(seeds[bi][factor - 1])
            if config.batched_noise:
                measured = config.noise.batch_medians(
                    true, entry_counts, rng, n=config.n_runs
                )
            else:
                measured = np.empty(n)
                for i in range(n):
                    measured[i] = config.noise.median_measurement(
                        true[i], int(entry_counts[i]), rng, n=config.n_runs
                    )
            results[(bi, factor)] = UnitResult(
                bench_index=bi,
                factor=factor,
                measured=measured,
                true_cycles=true,
                worker=0,
                seconds=0.0,
            )
    return results


def _record_class_timings(
    rollup: MeasurementRollup,
    index: DedupIndex,
    class_results: dict[int, ClassUnitResult],
) -> None:
    """Class sweeps are the real work units of a dedup run, so they — not
    the synthetic fan-out units — carry the timings (factor 0 marks a
    whole-sweep unit; ``n_loops`` counts the members served)."""
    for ci, cls in enumerate(index.classes):
        unit = class_results.get(ci)
        if unit is None:
            continue
        rollup.record(
            UnitTiming(
                benchmark=f"class:{cls.key[:12]}",
                factor=0,
                worker=unit.worker,
                n_loops=len(cls.members),
                seconds=unit.seconds,
                analysis_hits=unit.analysis_hits,
                analysis_misses=unit.analysis_misses,
            )
        )


def _dedup_stats(index: DedupIndex, units) -> DedupStats:
    """The index's static statistics plus the run's incremental counters."""
    return dataclasses.replace(
        index.stats,
        incremental_hits=sum(u.incremental_hits for u in units),
        incremental_misses=sum(u.incremental_misses for u in units),
    )


def measure_suite(
    suite: Suite,
    config: LabelingConfig = LabelingConfig(),
    jobs: int | None = None,
    rollup: MeasurementRollup | None = None,
    resilience: ResilienceConfig | None = None,
    journal: CheckpointJournal | None = None,
) -> MeasurementTable:
    """Steps 1-2 of the protocol over every loop in the suite.

    Args:
        suite: the benchmark suite to measure.
        config: labelling protocol knobs.
        jobs: worker processes to fan the work units over; ``None`` reads
            ``REPRO_JOBS`` and defaults to serial.  Results are
            bit-identical for every value of ``jobs``.
        rollup: optional sink for per-unit worker timings and resilience
            events (retries, timeouts, quarantines, pool failures).
        resilience: retry/timeout/quarantine policy for the work units.
        journal: checkpoint journal — completed units are committed to it
            and, after :meth:`~repro.resilience.CheckpointJournal.load`,
            replayed instead of re-measured, so a killed run resumes
            bit-identically to an uninterrupted one.  Dedup runs use
            class-key labels, so a journal never mixes the two unit shapes.
    """
    if config.dedup:
        return _measure_suite_dedup(suite, config, jobs, rollup, resilience, journal)
    jobs = resolve_jobs(jobs)
    benchmarks = suite.benchmarks
    assembly = _TableAssembly(suite, config)
    seeds = _unit_seeds(config.seed, len(benchmarks))
    # Serial runs share one private cost model across all units so the
    # analysis caches amortise across factors (pool workers get the same
    # effect from their process-local shared models).
    cost_model = (
        CostModel(machine=config.machine, swp=config.swp, engine=config.engine)
        if jobs == 1
        else None
    )
    tasks = [
        UnitTask(
            key=(bi, factor),
            label=f"{benchmark.name}:u{factor}",
            fn=measure_benchmark_factor,
            args=(benchmark, bi, factor, config, seeds[bi][factor - 1]),
            seed=seeds[bi][factor - 1],
            serial_call=(
                None
                if cost_model is None
                else _bind_serial(benchmark, bi, factor, config,
                                  seeds[bi][factor - 1], cost_model)
            ),
        )
        for bi, benchmark in enumerate(benchmarks)
        for factor in range(1, MAX_UNROLL + 1)
    ]
    report = run_units(
        tasks,
        jobs=jobs,
        config=resilience or DEFAULT_RESILIENCE,
        journal=journal,
        encode=unit_to_json,
        decode=unit_from_json,
        initializer=reset_shared_cost_models,
    )
    if rollup is not None:
        rollup.events.extend(report.events)
    return assembly.merge(report.results, rollup, config.swp)


def _measure_suite_dedup(
    suite: Suite,
    config: LabelingConfig,
    jobs: int | None,
    rollup: MeasurementRollup | None,
    resilience: ResilienceConfig | None,
    journal: CheckpointJournal | None,
) -> MeasurementTable:
    """Dedup-enabled :func:`measure_suite`: one work unit per cost-key
    class, fanned back out to every member before the deterministic merge.
    Bit-identical to the dedup-off path for every ``jobs`` value."""
    jobs = resolve_jobs(jobs)
    index = build_dedup_index(suite, machine=config.machine)
    assembly = _TableAssembly(suite, config)
    seeds = _unit_seeds(config.seed, len(suite.benchmarks))
    cost_model = (
        CostModel(machine=config.machine, swp=config.swp, engine=_class_engine(config))
        if jobs == 1
        else None
    )
    tasks = [
        UnitTask(
            key=ci,
            label=f"class:{cls.key}",
            fn=measure_class,
            args=(index.representative_loop(suite, ci), cls.key, config),
            serial_call=(
                None
                if cost_model is None
                else _bind_serial_class(
                    index.representative_loop(suite, ci), cls.key, config, cost_model
                )
            ),
        )
        for ci, cls in enumerate(index.classes)
    ]
    report = run_units(
        tasks,
        jobs=jobs,
        config=resilience or DEFAULT_RESILIENCE,
        journal=journal,
        encode=class_unit_to_json,
        decode=class_unit_from_json,
        initializer=reset_shared_cost_models,
    )
    results = _fan_out(suite, config, index, report.results, seeds)
    if rollup is not None:
        rollup.events.extend(report.events)
        _record_class_timings(rollup, index, report.results)
        rollup.dedup = _dedup_stats(index, report.results.values())
    return assembly.merge(results, None, config.swp)


def _bind_serial_pair(benchmark, bi, factor, config_off, config_on, seed, models):
    return lambda: measure_benchmark_factor_pair(
        benchmark, bi, factor, config_off, config_on, seed, models
    )


def measure_suite_pair(
    suite: Suite,
    config: LabelingConfig = LabelingConfig(),
    jobs: int | None = None,
    rollup_off: MeasurementRollup | None = None,
    rollup_on: MeasurementRollup | None = None,
    resilience: ResilienceConfig | None = None,
    journal: CheckpointJournal | None = None,
) -> tuple[MeasurementTable, MeasurementTable]:
    """Measure both scheduling regimes, sharing the analysis stage.

    Returns ``(swp_off_table, swp_on_table)``, each bit-identical to a
    standalone :func:`measure_suite` run with the corresponding
    ``config.swp`` — but roughly twice as cheap, because each work unit
    runs the two regimes back to back against one shared
    :class:`~repro.simulate.executor.AnalysisCache`, and unrolling,
    cleanup, dependence analysis, and scheduler-table construction are all
    regime-independent.  Fault tolerance matches :func:`measure_suite`:
    retries, quarantine, broken-pool fallback, and checkpoint/resume all
    operate on the paired unit, and each resilience event is reported once
    — on ``rollup_off`` when given, else on ``rollup_on``.
    """
    if config.dedup:
        return _measure_suite_pair_dedup(
            suite, config, jobs, rollup_off, rollup_on, resilience, journal
        )
    jobs = resolve_jobs(jobs)
    benchmarks = suite.benchmarks
    config_off = dataclasses.replace(config, swp=False)
    config_on = dataclasses.replace(config, swp=True)
    assembly_off = _TableAssembly(suite, config_off)
    assembly_on = _TableAssembly(suite, config_on)
    seeds = _unit_seeds(config.seed, len(benchmarks))
    if jobs == 1:
        shared = AnalysisCache()
        cost_models = (
            CostModel(machine=config.machine, swp=False, analysis=shared,
                      engine=config.engine),
            CostModel(machine=config.machine, swp=True, analysis=shared,
                      engine=config.engine),
        )
    else:
        cost_models = None
    tasks = [
        UnitTask(
            key=(bi, factor),
            label=f"{benchmark.name}:u{factor}",
            fn=measure_benchmark_factor_pair,
            args=(benchmark, bi, factor, config_off, config_on,
                  seeds[bi][factor - 1]),
            seed=seeds[bi][factor - 1],
            serial_call=(
                None
                if cost_models is None
                else _bind_serial_pair(benchmark, bi, factor, config_off,
                                       config_on, seeds[bi][factor - 1],
                                       cost_models)
            ),
        )
        for bi, benchmark in enumerate(benchmarks)
        for factor in range(1, MAX_UNROLL + 1)
    ]
    report = run_units(
        tasks,
        jobs=jobs,
        config=resilience or DEFAULT_RESILIENCE,
        journal=journal,
        encode=_pair_to_json,
        decode=_pair_from_json,
        initializer=reset_shared_cost_models,
    )
    results_off = {key: pair[0] for key, pair in report.results.items()}
    results_on = {key: pair[1] for key, pair in report.results.items()}
    # Each work unit runs both regimes, so every resilience event belongs
    # to the pair, not to a regime.  Attach the events to exactly one
    # rollup (the first one given) so that a caller aggregating or
    # printing both never counts a recovery action twice.
    event_rollup = rollup_off if rollup_off is not None else rollup_on
    if event_rollup is not None:
        event_rollup.events.extend(report.events)
    return (
        assembly_off.merge(results_off, rollup_off, False),
        assembly_on.merge(results_on, rollup_on, True),
    )


def _measure_suite_pair_dedup(
    suite: Suite,
    config: LabelingConfig,
    jobs: int | None,
    rollup_off: MeasurementRollup | None,
    rollup_on: MeasurementRollup | None,
    resilience: ResilienceConfig | None,
    journal: CheckpointJournal | None,
) -> tuple[MeasurementTable, MeasurementTable]:
    """Dedup-enabled :func:`measure_suite_pair`: one paired class sweep
    per cost-key class, both regimes sharing one analysis cache, fanned
    back out per regime.  Each rollup receives its own regime's class
    timings and dedup statistics; resilience events are reported once."""
    jobs = resolve_jobs(jobs)
    config_off = dataclasses.replace(config, swp=False)
    config_on = dataclasses.replace(config, swp=True)
    index = build_dedup_index(suite, machine=config.machine)
    assembly_off = _TableAssembly(suite, config_off)
    assembly_on = _TableAssembly(suite, config_on)
    seeds = _unit_seeds(config.seed, len(suite.benchmarks))
    if jobs == 1:
        shared = AnalysisCache()
        engine = _class_engine(config)
        cost_models = (
            CostModel(machine=config.machine, swp=False, analysis=shared,
                      engine=engine),
            CostModel(machine=config.machine, swp=True, analysis=shared,
                      engine=engine),
        )
    else:
        cost_models = None
    tasks = [
        UnitTask(
            key=ci,
            label=f"class:{cls.key}",
            fn=measure_class_pair,
            args=(
                index.representative_loop(suite, ci),
                cls.key,
                config_off,
                config_on,
            ),
            serial_call=(
                None
                if cost_models is None
                else _bind_serial_class_pair(
                    index.representative_loop(suite, ci), cls.key,
                    config_off, config_on, cost_models
                )
            ),
        )
        for ci, cls in enumerate(index.classes)
    ]
    report = run_units(
        tasks,
        jobs=jobs,
        config=resilience or DEFAULT_RESILIENCE,
        journal=journal,
        encode=_class_pair_to_json,
        decode=_class_pair_from_json,
        initializer=reset_shared_cost_models,
    )
    class_off = {ci: pair[0] for ci, pair in report.results.items()}
    class_on = {ci: pair[1] for ci, pair in report.results.items()}
    results_off = _fan_out(suite, config_off, index, class_off, seeds)
    results_on = _fan_out(suite, config_on, index, class_on, seeds)
    event_rollup = rollup_off if rollup_off is not None else rollup_on
    if event_rollup is not None:
        event_rollup.events.extend(report.events)
    if rollup_off is not None:
        _record_class_timings(rollup_off, index, class_off)
        rollup_off.dedup = _dedup_stats(index, class_off.values())
    if rollup_on is not None:
        _record_class_timings(rollup_on, index, class_on)
        rollup_on.dedup = _dedup_stats(index, class_on.values())
    return (
        assembly_off.merge(results_off, None, False),
        assembly_on.merge(results_on, None, True),
    )


def stats_from_table(table: MeasurementTable, config: LabelingConfig) -> LabelingStats:
    """Filter statistics for a measured table."""
    stats = LabelingStats(n_loops_total=len(table))
    long_enough = table.measured[:, 0] >= config.min_cycles
    best = table.measured.min(axis=1)
    informative = table.measured.mean(axis=1) / best >= config.min_benefit
    stats.n_below_cycle_floor = int(np.sum(~long_enough))
    stats.n_flat = int(np.sum(long_enough & ~informative))
    mask = long_enough & informative
    stats.n_labeled = int(mask.sum())
    labels = np.argmin(table.measured[mask], axis=1) + 1
    for label in labels:
        stats.labels_histogram[int(label)] = stats.labels_histogram.get(int(label), 0) + 1
    return stats


def label_suite(
    suite: Suite, config: LabelingConfig = LabelingConfig()
) -> tuple[LoopDataset, LabelingStats]:
    """The full protocol: measure, filter, label."""
    table = measure_suite(suite, config)
    stats = stats_from_table(table, config)
    dataset = table.to_dataset(config.min_cycles, config.min_benefit)
    return dataset, stats
