"""The model-artifact container: deterministic, versioned, checksummed.

An artifact is a zip file with three kinds of entries:

* ``manifest.json`` — schema version, scalar classifier state (the nested
  :meth:`~repro.heuristics.learned.LearnedHeuristic.get_state` tree with
  every array leaf replaced by a named placeholder), the feature-name
  list, provenance, and a SHA-256 checksum per array entry;
* ``manifest.sha256`` — the digest of the manifest bytes themselves;
* ``arrays/<key>.npy`` — each array leaf in NumPy's ``.npy`` format
  (``allow_pickle=False`` on both ends).

Three properties mirror the measurement cache's contract
(:mod:`repro.pipeline.cache`):

* **Deterministic bytes** — entries are stored uncompressed with pinned
  zip timestamps, so the same trained model always serialises to the same
  file (``save -> save`` is byte-identical, and artifacts diff cleanly).
* **Atomic writes** — same-directory temp file + ``os.replace``; a reader
  never observes a half-written artifact.
* **Corruption is one exception** — truncation, bit flips, bad zip
  containers, missing entries, and checksum mismatches all raise
  :class:`CorruptArtifactError` (never ``BadZipFile``/``KeyError``); a
  schema mismatch raises the distinct :class:`StaleArtifactError` because
  the file is *valid*, just from another era, and must not be quarantined.

Restored heuristics reproduce the serialised model's predictions
bit-identically: the stored state is the fitted state (normalised
databases, dual coefficients), never refit on load.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import logging
import os
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.features.catalog import FEATURE_NAMES
from repro.heuristics.learned import (
    EnsembleHeuristic,
    LearnedHeuristic,
    restore_ensemble_heuristic,
    train_ensemble_heuristic,
    train_forest_heuristic,
    train_mlp_heuristic,
    train_nn_heuristic,
    train_svm_heuristic,
)
from repro.ir.loop import Loop
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.ml.dataset import LoopDataset

logger = logging.getLogger(__name__)

#: Version of the artifact container schema.  A mismatch on load raises
#: :class:`StaleArtifactError` — old artifacts are re-trained, never
#: misread.
#:
#: v1: NN + pairwise LS-SVM.
#: v2: all four predictor families (nn/svm/mlp/forest) plus the calibrated
#:     ensemble head (temperatures, weights, classes — members are stored
#:     once under their family keys, never duplicated).
ARTIFACT_SCHEMA_VERSION = 2

#: Format tag written into (and demanded from) every manifest.
ARTIFACT_FORMAT = "repro-model-artifact"

#: Pinned zip timestamp (the zip epoch) so byte output is reproducible.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)

#: Default registry directory (repository-local, ignored by packaging).
DEFAULT_ARTIFACT_DIR = Path(__file__).resolve().parents[3] / ".artifacts"


class ArtifactError(RuntimeError):
    """Base class for model-artifact load failures."""


class CorruptArtifactError(ArtifactError):
    """An artifact on disk is corrupt: truncated, bit-flipped, missing
    entries, or failing its checksums.  Every deserialisation failure maps
    onto this one exception so callers need a single ``except`` — and can
    quarantine the file, exactly like the measurement cache."""


class StaleArtifactError(ArtifactError):
    """An artifact was written under a different schema version.  The file
    is intact — it must not be quarantined — but cannot be served; the
    remedy is retraining (``repro-unroll train``)."""


def default_artifact_dir() -> Path:
    """The active registry root: ``REPRO_ARTIFACT_DIR`` if set, else the
    repository-local ``.artifacts/``."""
    env = os.environ.get("REPRO_ARTIFACT_DIR", "").strip()
    return Path(env) if env else DEFAULT_ARTIFACT_DIR


def dataset_fingerprint(dataset: LoopDataset) -> str:
    """A short stable hash of the training data (features + labels),
    recorded as provenance so an artifact can be traced to its dataset."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(dataset.X).tobytes())
    digest.update(np.ascontiguousarray(dataset.labels).tobytes())
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# State-tree flattening: arrays out to named entries, scalars into JSON.
# ---------------------------------------------------------------------------


def _flatten(tree, key: str, arrays: dict[str, np.ndarray]):
    """Replace every ndarray leaf with ``{"__array__": name}``, collecting
    the arrays under slash-joined names."""
    if isinstance(tree, np.ndarray):
        arrays[key] = tree
        return {"__array__": key}
    if isinstance(tree, dict):
        return {k: _flatten(v, f"{key}/{k}", arrays) for k, v in tree.items()}
    if isinstance(tree, (list, tuple)):
        return [_flatten(v, f"{key}/{i}", arrays) for i, v in enumerate(tree)]
    if tree is None or isinstance(tree, (bool, int, float, str)):
        return tree
    raise TypeError(f"cannot serialise {type(tree).__name__} in a model artifact")


def _unflatten(tree, arrays: dict[str, np.ndarray]):
    """Inverse of :func:`_flatten`."""
    if isinstance(tree, dict):
        if set(tree) == {"__array__"}:
            return arrays[tree["__array__"]]
        return {k: _unflatten(v, arrays) for k, v in tree.items()}
    if isinstance(tree, list):
        return [_unflatten(v, arrays) for v in tree]
    return tree


# ---------------------------------------------------------------------------
# The artifact itself.
# ---------------------------------------------------------------------------


#: Every classifier name an artifact can serve, in canonical order.
ARTIFACT_FAMILIES = ("nn", "svm", "mlp", "forest", "ensemble")


@dataclasses.dataclass(frozen=True)
class ModelArtifact:
    """The deployable bundle: every trained family plus metadata.

    Attributes:
        nn / svm / mlp / forest: the trained family heuristics (each owns
            its fitted normaliser and the feature subset it was trained
            on).
        ensemble: the calibrated ensemble head over the same four fitted
            members (shares their classifiers; adds temperatures/weights).
        feature_indices: catalog indices of the selected features (``None``
            means the full catalog).
        feature_names: names of the selected features, in subset order.
        provenance: training metadata (suite seed/scale, SWP regime, row
            count, dataset fingerprint, ...) — JSON-serialisable scalars.
    """

    nn: LearnedHeuristic
    svm: LearnedHeuristic
    mlp: LearnedHeuristic
    forest: LearnedHeuristic
    ensemble: EnsembleHeuristic
    feature_indices: np.ndarray | None
    feature_names: tuple[str, ...]
    provenance: dict

    @property
    def families(self) -> tuple[str, ...]:
        """The classifier names this artifact serves."""
        return ARTIFACT_FAMILIES

    def heuristic(self, classifier: str = "svm") -> LearnedHeuristic:
        """The trained heuristic by classifier name (any of
        :data:`ARTIFACT_FAMILIES`)."""
        if classifier in ARTIFACT_FAMILIES:
            return getattr(self, classifier)
        raise ValueError(f"unknown classifier {classifier!r}")

    def predict_loop(self, loop: Loop, classifier: str = "svm") -> int:
        return self.heuristic(classifier).predict_loop(loop)

    def predict_features(self, X: np.ndarray, classifier: str = "svm") -> np.ndarray:
        return self.heuristic(classifier).predict_features(X)

    def save(self, path: str | Path) -> Path:
        return save_artifact(self, path)


def train_model_artifact(
    dataset: LoopDataset,
    feature_indices: np.ndarray | None = None,
    provenance: dict | None = None,
    machine: MachineModel = ITANIUM2,
    seed: int = 0,
) -> ModelArtifact:
    """Train every predictor family on a labelled dataset and bundle them.

    Each family is fitted exactly once; the calibrated ensemble head is
    then fit over the same members (its cross-val calibration refits
    throwaway fold models internally).  ``provenance`` entries are merged
    over the defaults (row count, SWP regime, dataset fingerprint) so
    callers can add suite seed/scale.  ``seed`` drives the stochastic
    families (MLP init/early-stop fold, forest bootstrap) and the
    calibration folds; the default makes retraining reproducible.
    """
    indices = (
        None if feature_indices is None else np.asarray(feature_indices, dtype=np.int64)
    )
    names = (
        FEATURE_NAMES if indices is None else tuple(FEATURE_NAMES[i] for i in indices)
    )
    X = np.asarray(dataset.X, dtype=np.float64)
    merged = {
        "n_rows": int(len(dataset)),
        "swp": bool(dataset.swp),
        "dataset_fingerprint": dataset_fingerprint(dataset),
        "machine": machine.name,
        # The training fingerprint the lifecycle's drift monitor compares
        # served traffic against: per-feature mean/std over the full
        # catalog (before subsetting), so any request vector can be
        # z-scored without retraining context.
        "feature_stats": {
            "mean": [float(v) for v in X.mean(axis=0)],
            "std": [float(v) for v in X.std(axis=0)],
        },
    }
    merged.update(provenance or {})
    members = {
        "nn": train_nn_heuristic(dataset, feature_indices=indices, machine=machine),
        "svm": train_svm_heuristic(dataset, feature_indices=indices, machine=machine),
        "mlp": train_mlp_heuristic(
            dataset, feature_indices=indices, seed=seed, machine=machine
        ),
        "forest": train_forest_heuristic(
            dataset, feature_indices=indices, seed=seed, machine=machine
        ),
    }
    ensemble = train_ensemble_heuristic(
        dataset, members, feature_indices=indices, seed=seed, machine=machine
    )
    return ModelArtifact(
        nn=members["nn"],
        svm=members["svm"],
        mlp=members["mlp"],
        forest=members["forest"],
        ensemble=ensemble,
        feature_indices=indices,
        feature_names=names,
        provenance=merged,
    )


# ---------------------------------------------------------------------------
# Serialisation.
# ---------------------------------------------------------------------------


def _array_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def save_artifact(artifact: ModelArtifact, path: str | Path) -> Path:
    """Atomically serialise an artifact; byte output is deterministic."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    state_tree = _flatten(
        {
            "nn": artifact.nn.get_state(),
            "svm": artifact.svm.get_state(),
            "mlp": artifact.mlp.get_state(),
            "forest": artifact.forest.get_state(),
            # The ensemble's members ARE the four states above; only its
            # small calibration head is stored, so arrays never duplicate.
            "ensemble_head": artifact.ensemble.classifier.head_state(),
            "feature_indices": artifact.feature_indices,
        },
        "state",
        arrays,
    )
    entries = {f"arrays/{key}.npy": _array_bytes(array) for key, array in arrays.items()}
    manifest = {
        "format": ARTIFACT_FORMAT,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "state": state_tree,
        "feature_names": list(artifact.feature_names),
        "provenance": artifact.provenance,
        "checksums": {
            name: hashlib.sha256(data).hexdigest() for name, data in sorted(entries.items())
        },
    }
    manifest_bytes = json.dumps(manifest, sort_keys=True, indent=1).encode()

    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with zipfile.ZipFile(tmp, "w", compression=zipfile.ZIP_STORED) as archive:
            def write(name: str, data: bytes) -> None:
                archive.writestr(zipfile.ZipInfo(name, date_time=_ZIP_EPOCH), data)

            write("manifest.json", manifest_bytes)
            write("manifest.sha256", hashlib.sha256(manifest_bytes).hexdigest().encode())
            for name in sorted(entries):
                write(name, entries[name])
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


_LOCAL_HEADER = struct.Struct("<IHHHHHIIIHH")  # PK\x03\x04 fixed part


def _verify_local_headers(path: Path, archive: zipfile.ZipFile) -> None:
    """Cross-check every entry's local file header against the central
    directory.

    Zip readers trust the central directory and skip over the redundant
    copies of CRC/size/method in each local header, so a bit flip there
    is *silently* ignored — the one region of the file the manifest and
    per-entry checksums cannot see. The entry checksums still catch any
    flip that changes bytes actually read; this closes the blind spot so
    a corrupted artifact never loads clean no matter where the flip
    lands."""
    raw = archive.fp
    for info in archive.infolist():
        raw.seek(info.header_offset)
        header = raw.read(_LOCAL_HEADER.size)
        if len(header) != _LOCAL_HEADER.size:
            raise CorruptArtifactError(f"{path}: truncated local header")
        (
            sig, version, flags, method, dostime, dosdate,
            crc, csize, usize, namelen, extralen,
        ) = _LOCAL_HEADER.unpack(header)
        year, month, day, hour, minute, second = info.date_time
        if (
            sig != 0x04034B50
            or version != info.extract_version
            or flags != info.flag_bits
            or method != info.compress_type
            or dostime != ((hour << 11) | (minute << 5) | (second // 2))
            or dosdate != (((year - 1980) << 9) | (month << 5) | day)
            or crc != info.CRC
            or csize != info.compress_size
            or usize != info.file_size
            or namelen != len(info.filename.encode("utf-8"))
            or extralen != len(info.extra)
        ):
            raise CorruptArtifactError(
                f"{path}: local header of {info.filename!r} disagrees with "
                f"the central directory"
            )


def load_artifact(path: str | Path, machine: MachineModel = ITANIUM2) -> ModelArtifact:
    """Load and verify an artifact.

    Raises:
        FileNotFoundError: no file at ``path`` (not a corruption — mirrors
            :meth:`MeasurementTable.load`).
        StaleArtifactError: intact artifact from a different schema version.
        CorruptArtifactError: anything else that prevents a verified load.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    try:
        with zipfile.ZipFile(path) as archive:
            _verify_local_headers(path, archive)
            manifest_bytes = archive.read("manifest.json")
            recorded = archive.read("manifest.sha256").decode("ascii").strip()
            if hashlib.sha256(manifest_bytes).hexdigest() != recorded:
                raise CorruptArtifactError(f"{path}: manifest checksum mismatch")
            manifest = json.loads(manifest_bytes)
            if manifest.get("format") != ARTIFACT_FORMAT:
                raise CorruptArtifactError(
                    f"{path}: not a model artifact (format={manifest.get('format')!r})"
                )
            version = manifest.get("schema_version")
            if version != ARTIFACT_SCHEMA_VERSION:
                raise StaleArtifactError(
                    f"{path}: artifact schema v{version} does not match the "
                    f"current v{ARTIFACT_SCHEMA_VERSION}; retrain with "
                    f"'repro-unroll train'"
                )
            arrays: dict[str, np.ndarray] = {}
            for name, checksum in manifest["checksums"].items():
                data = archive.read(name)
                if hashlib.sha256(data).hexdigest() != checksum:
                    raise CorruptArtifactError(f"{path}: checksum mismatch in {name}")
                key = name[len("arrays/") : -len(".npy")]
                arrays[key] = np.lib.format.read_array(
                    io.BytesIO(data), allow_pickle=False
                )
            state = _unflatten(manifest["state"], arrays)
            indices = state["feature_indices"]
            indices = None if indices is None else np.asarray(indices, dtype=np.int64)
            members = {
                name: LearnedHeuristic.from_state(state[name], machine=machine)
                for name in ("nn", "svm", "mlp", "forest")
            }
            ensemble = restore_ensemble_heuristic(
                members,
                state["ensemble_head"],
                feature_indices=indices,
                machine=machine,
            )
            return ModelArtifact(
                nn=members["nn"],
                svm=members["svm"],
                mlp=members["mlp"],
                forest=members["forest"],
                ensemble=ensemble,
                feature_indices=indices,
                feature_names=tuple(manifest["feature_names"]),
                provenance=dict(manifest["provenance"]),
            )
    except (FileNotFoundError, StaleArtifactError, CorruptArtifactError):
        raise
    except Exception as error:  # BadZipFile, KeyError, json/format errors, ...
        raise CorruptArtifactError(f"unreadable model artifact {path}: {error}") from error


def load_or_quarantine(path: str | Path, machine: MachineModel = ITANIUM2) -> ModelArtifact:
    """Load an artifact; on corruption, quarantine the file (rename
    ``*.corrupt``) before re-raising so it can never be re-read as live.
    Stale artifacts are left in place — they are valid files."""
    path = Path(path)
    try:
        return load_artifact(path, machine=machine)
    except CorruptArtifactError as error:
        target = path.with_name(path.name + ArtifactStore.QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
            logger.warning("quarantined corrupt model artifact %s: %s", path.name, error)
        except FileNotFoundError:
            pass  # another process already moved or removed it
        raise


# ---------------------------------------------------------------------------
# The registry store (named artifacts under one root, CacheStore-style).
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ArtifactStats:
    """A snapshot of the registry's contents."""

    directory: Path
    n_entries: int
    n_quarantined: int
    n_stale_tmp: int
    total_bytes: int

    def summary(self) -> str:
        return (
            f"{self.directory}: {self.n_entries} artifact(s) "
            f"({self.total_bytes / 1024:.0f} KiB), "
            f"{self.n_quarantined} quarantined, {self.n_stale_tmp} stale temp file(s)"
        )


class ArtifactStore:
    """Named model artifacts under one directory, with self-healing loads.

    Mirrors :class:`~repro.pipeline.cache.CacheStore`: atomic writes,
    corrupt entries quarantined and reported as misses, stale-schema
    entries reported as misses but left in place (a retrain overwrites
    them).
    """

    PREFIX = "model_"
    SUFFIX = ".rma"
    QUARANTINE_SUFFIX = ".corrupt"

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_artifact_dir()

    def path_for(self, name: str) -> Path:
        return self.root / f"{self.PREFIX}{name}{self.SUFFIX}"

    def entries(self) -> list[Path]:
        return sorted(self.root.glob(f"{self.PREFIX}*{self.SUFFIX}"))

    def quarantined(self) -> list[Path]:
        return sorted(self.root.glob(f"*{self.QUARANTINE_SUFFIX}"))

    def stale_tmp(self) -> list[Path]:
        return sorted(self.root.glob(".*.tmp"))

    # ------------------------------------------------------------------

    def load(self, name: str, machine: MachineModel = ITANIUM2) -> ModelArtifact | None:
        """The stored artifact, or ``None`` on a miss (absent, corrupt —
        quarantined — or schema-stale)."""
        path = self.path_for(name)
        try:
            return load_or_quarantine(path, machine=machine)
        except FileNotFoundError:
            return None
        except StaleArtifactError as error:
            logger.warning("ignoring stale model artifact %s: %s", path.name, error)
            return None
        except CorruptArtifactError:
            return None  # already quarantined

    def store(self, name: str, artifact: ModelArtifact) -> Path:
        return save_artifact(artifact, self.path_for(name))

    # ------------------------------------------------------------------

    def stats(self) -> ArtifactStats:
        entries = self.entries()
        return ArtifactStats(
            directory=self.root,
            n_entries=len(entries),
            n_quarantined=len(self.quarantined()),
            n_stale_tmp=len(self.stale_tmp()),
            total_bytes=sum(p.stat().st_size for p in entries if p.exists()),
        )

    def gc(self) -> list[Path]:
        """Prune everything unservable: quarantined files, stale temp
        files, and entries that fail to load (corrupt or schema-stale).
        Returns what was removed."""
        removed: list[Path] = []
        for path in self.quarantined() + self.stale_tmp():
            path.unlink(missing_ok=True)
            removed.append(path)
        for path in self.entries():
            try:
                load_artifact(path)
            except (CorruptArtifactError, StaleArtifactError):
                path.unlink(missing_ok=True)
                removed.append(path)
            except FileNotFoundError:
                pass
        return removed

    def clear(self) -> int:
        """Remove every file (live, quarantined, temp); returns the count."""
        count = 0
        for path in self.entries() + self.quarantined() + self.stale_tmp():
            path.unlink(missing_ok=True)
            count += 1
        return count
