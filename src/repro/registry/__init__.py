"""Versioned, checksummed model artifacts (the train-once half).

The paper's end product is a heuristic *deployed inside a compiler*:
training happens once, offline, and the compiler only ever loads the
result.  This package is that split's persistence layer — a
:class:`ModelArtifact` bundles every trained predictor family (NN, SVM,
MLP, random forest, and the calibrated ensemble head), their
fitted normalisers, the selected-feature subset, and provenance metadata
into one deterministic, schema-versioned, checksummed file that
:mod:`repro.serve` (and ``repro-unroll predict --model``) can load without
touching the measurement pipeline.
"""

from repro.registry.artifact import (
    ARTIFACT_FAMILIES,
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    ArtifactStats,
    ArtifactStore,
    CorruptArtifactError,
    ModelArtifact,
    StaleArtifactError,
    dataset_fingerprint,
    default_artifact_dir,
    load_artifact,
    load_or_quarantine,
    save_artifact,
    train_model_artifact,
)

__all__ = [
    "ARTIFACT_FAMILIES",
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "ArtifactStats",
    "ArtifactStore",
    "CorruptArtifactError",
    "ModelArtifact",
    "StaleArtifactError",
    "dataset_fingerprint",
    "default_artifact_dir",
    "load_artifact",
    "load_or_quarantine",
    "save_artifact",
    "train_model_artifact",
]
