"""The loop cycle simulator.

``CostModel.loop_cost(loop, factor)`` answers the question the paper answers
with a real Itanium 2: *how many cycles does this loop take per program run
when unrolled by this factor?*  The answer is emergent, not a formula: the
loop is actually unrolled, cleaned up (scalar replacement, coalescing, DCE),
dependence-analyzed, and scheduled — acyclically when software pipelining is
off, by iterative modulo scheduling when it is on — on the chosen machine
description, with register-pressure spills, I-cache overflow, trip-count
preconditioning, and early-exit costs layered on top.

Because every term comes from the same IR the feature extractor reads, the
optimal unroll factor is a learnable (but noisy and non-obvious) function of
the loop's static characteristics — the property all of the paper's
experiments rest on.

Costing splits into two stages:

* **Analysis** — unroll + cleanup (:func:`optimize_for_factor`), dependence
  analysis, and the scheduler's precomputed tables, none of which depend on
  whether software pipelining is enabled.  The stage is memoised in a
  bounded :class:`AnalysisCache` keyed by ``(loop name, factor, plan)`` (the
  plan *must* participate: ablations change the unrolled body), so the
  SWP-on and SWP-off regimes — and repeated queries within one regime —
  share one analysis per configuration.
* **Scheduling** — the per-regime part: list scheduling plus steady-state
  and spill terms, or modulo scheduling when SWP is on and the part is
  eligible.  Cheap relative to analysis, and never cached.

``engine="reference"`` bypasses both the cache and the table-driven
schedulers, running the original single-stage path — the baseline that
``repro-unroll bench`` compares against, and the oracle the equivalence
tests pin the fast path to.

``engine="incremental"`` layers cross-factor reuse *under* the analysis
cache: the factor-``f`` analysis extends work already done for other
factors of the same loop instead of recomputing it.  Four mechanisms, each
individually proven bit-identical to the from-scratch path:

* **clamp sharing** — for a compile-time-known trip count ``T``, every
  requested factor ``f > T`` clamps to the same effective factor, so the
  entry is the effective factor's analysis with only ``requested_factor``
  rewritten;
* **unroll row reuse** — copy ``k`` of an unrolled body depends only on
  ``(k, k == u - 1)`` (renaming reads copy ``k - 1``'s names, which a
  standalone rebuild reproduces exactly), so the renamed rows are built
  once and only the memory retargeting runs per factor;
* **remainder sharing** — remainder bodies across factors differ only in
  their base offset, and dependence distances, scheduler tables, and
  register pressure are all shift-invariant, so one factor's remainder
  analysis serves them all;
* **scheduling-scalar cells** — the list scheduler's steady-state cycles
  and pressure estimate for one analysis entry are stored in a small
  mutable cell on the entry, so the second regime (and every factor that
  shares a remainder) skips the schedule and recomputes only the trailing
  float arithmetic, in the original operation order.

All reuse sits *below* :meth:`CostModel.analyze`'s cache lookup, so cache
verification (and the ``analysis.poison`` fault) behave identically.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass

from repro.ir.dependence import DependenceGraph, analyze_dependences
from repro.ir.instruction import Instruction
from repro.ir.loop import Loop, TripInfo
from repro.ir.types import MAX_UNROLL
from repro.ir.values import Reg
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.sched.list_scheduler import (
    list_schedule,
    list_schedule_reference,
    steady_state_cycles,
    steady_state_cycles_reference,
)
from repro.sched.modulo import (
    ModuloScheduleError,
    modulo_schedule,
    modulo_schedule_reference,
    swp_register_pressure,
)
from repro.resilience.faults import get_injector
from repro.sched.precompute import SchedPrecomp
from repro.sched.regpressure import max_live, spill_cycles
from repro.simulate.cache import (
    bandwidth_floor_per_iteration,
    effective_load_latency,
    icache_entry_penalty,
)
from repro.transforms.coalesce import coalesce_loads
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.pipeline import OptimizationPlan, optimize_for_factor
from repro.transforms.scalar_replacement import scalar_replace
from repro.transforms.unroll import UnrollResult

#: Fixed cycles to enter a loop (live-in setup, first-bundle fetch).
ENTRY_OVERHEAD = 3

#: Fixed cycles to set up a software-pipelined kernel (rotating-register
#: initialisation, predicate staging).
SWP_SETUP = 6


@dataclass(frozen=True)
class LoopCost:
    """Cycle cost of one (loop, unroll factor) configuration."""

    loop_name: str
    factor: int
    swp_requested: bool
    swp_used: bool
    total_cycles: float
    per_entry_cycles: float
    main_period: float
    ii: int | None
    stages: int | None
    spill_penalty: float
    icache_penalty: int
    precondition_penalty: int
    emitted_instructions: int


class _SchedCell:
    """Mutable memo for one loop part's list-scheduling scalars.

    Holds ``(steady_state_cycles, pressure)`` — the only outputs of the
    schedule that survive into the cost; the trailing float arithmetic
    (spill cap, period, trip multiply) is recomputed per query in the
    original operation order, so a cell hit is bit-identical to a fresh
    schedule.  Only the incremental engine creates cells; entries built by
    the fast engine carry ``None`` and schedule every time.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: tuple | None = None


@dataclass(frozen=True)
class LoopAnalysis:
    """The regime-independent half of costing one (loop, factor, plan).

    Everything here is a pure function of the source loop, the unroll
    factor, the cleanup plan, and the *base* machine — software pipelining
    plays no part, so one analysis serves both scheduling regimes.
    """

    loop: Loop  # retained for structural verification on cache hits
    base_machine: MachineModel
    machine: MachineModel  # base machine with the loop's effective load latency
    bw_floor: float
    result: UnrollResult
    main_deps: DependenceGraph | None
    main_pre: SchedPrecomp | None
    rem_deps: DependenceGraph | None
    rem_pre: SchedPrecomp | None
    main_cell: _SchedCell | None = None
    rem_cell: _SchedCell | None = None


class AnalysisCache:
    """Bounded LRU cache of :class:`LoopAnalysis` entries.

    Keys are ``(loop name, factor, plan)`` — loop names are unique within a
    generated suite, but hand-built suites may collide, so a hit is only
    honoured after verifying the stored loop is structurally equal to the
    queried one and was analysed under the same base machine (``Loop`` holds
    a dict field and cannot itself be a dict key).  A mismatch counts as a
    miss and the entry is replaced.

    One cache may be shared by several :class:`CostModel` instances — that
    sharing is the point: the SWP-on and SWP-off models of a measurement
    pair hit each other's analyses.  ``hits``/``misses`` counters feed the
    measurement rollup.
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, LoopAnalysis]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, key: tuple, loop: Loop, base_machine: MachineModel
    ) -> LoopAnalysis | None:
        entry = self._entries.get(key)
        if entry is not None:
            injector = get_injector()
            if injector.active and injector.fire(
                "analysis.poison", f"{key[0]}:f{key[1]}"
            ):
                # Deterministic in-memory corruption: wipe the provenance so
                # the structural verification below must reject the entry —
                # the self-heal path (miss, recompute, overwrite) is then
                # exercised by a real bad entry rather than a mock.
                entry = dataclasses.replace(entry, base_machine=None)
                self._entries[key] = entry
        if (
            entry is not None
            and entry.loop == loop
            and entry.base_machine == base_machine
        ):
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, key: tuple, entry: LoopAnalysis) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are preserved: they describe the
        lifetime of the cache, not its current contents)."""
        self._entries.clear()


class _LoopStore:
    """Per-loop scratch state for the incremental engine.

    Everything in here is a pure function of the source loop (plus, for the
    remainder analysis, the model's fixed plan and machine), shared across
    unroll factors:

    * ``carried`` — the carried-register set (one scan instead of one per
      unroll call);
    * ``rows`` — renamed body copies keyed by ``(k, is_last)``, still
      awaiting per-factor memory retargeting;
    * ``retargeted`` — a fresh-identity clone of the body, rebased per
      factor for remainder loops;
    * ``rem_shared`` / ``rem_cell`` — one remainder's dependence graph,
      scheduler tables, and scheduling-scalar cell, valid for every
      factor's remainder because all of them are offset shifts of the same
      body.
    """

    __slots__ = ("loop", "carried", "rows", "retargeted", "rem_shared", "rem_cell")

    def __init__(self, loop: Loop) -> None:
        self.loop = loop
        self.carried = loop.carried_regs()
        self.rows: dict[tuple[int, bool], tuple[Instruction, ...]] = {}
        self.retargeted: tuple[Instruction, ...] | None = None
        self.rem_shared: tuple[DependenceGraph, SchedPrecomp] | None = None
        self.rem_cell: _SchedCell | None = None


#: Process-local cost-model registry, keyed by (machine name, swp, engine).
#: See :func:`shared_cost_model`.
_SHARED_MODELS: dict[tuple[str, bool, str], "CostModel"] = {}

#: Process-local analysis caches shared by both regimes of one machine.
_SHARED_ANALYSIS: dict[str, AnalysisCache] = {}


def shared_analysis_cache(machine: MachineModel) -> AnalysisCache:
    """The process-local :class:`AnalysisCache` for ``machine`` — one per
    machine, shared by the SWP-on and SWP-off shared cost models so a work
    unit measured in both regimes analyses each loop once."""
    cache = _SHARED_ANALYSIS.get(machine.name)
    if cache is None:
        cache = AnalysisCache()
        _SHARED_ANALYSIS[machine.name] = cache
    return cache


def shared_cost_model(
    machine: MachineModel, swp: bool, engine: str = "fast"
) -> "CostModel":
    """Process-local memoised :class:`CostModel` — the worker-safe entry
    point for the parallel measurement pipeline.

    Each worker process reuses one model per (machine, swp, engine) regime
    across all the work units it executes, so the per-loop analysis caches
    (effective load latency, bandwidth floor) amortise across the eight
    unroll factors of a benchmark just as they do in a serial run; the two
    SWP regimes of one engine additionally share one :class:`AnalysisCache`
    via :func:`shared_analysis_cache` (the fast and incremental engines
    produce interchangeable, bit-identical entries, so they may share it
    too).  The caches are keyed by loop name, which is unique within a
    generated suite; callers measuring hand-built suites with colliding
    loop names should construct their own :class:`CostModel`.
    """
    key = (machine.name, swp, engine)
    model = _SHARED_MODELS.get(key)
    if model is None or model.machine != machine:
        model = CostModel(
            machine=machine,
            swp=swp,
            analysis=shared_analysis_cache(machine),
            engine=engine,
        )
        _SHARED_MODELS[key] = model
    return model


def reset_shared_cost_models() -> None:
    """Drop all process-local shared cost models and analysis caches (pool
    initializer: forked workers must not inherit the parent's caches)."""
    _SHARED_MODELS.clear()
    _SHARED_ANALYSIS.clear()


class CostModel:
    """Times loops on a machine description.

    Args:
        machine: target description (default: the Itanium 2 lookalike).
        swp: whether software pipelining is enabled (the paper's two
            regimes).
        plan: post-unroll cleanup switches (ablations toggle these).
        analysis: the analysis cache to use; pass a shared instance to let
            several models (typically the two SWP regimes) reuse each
            other's analyses.  ``None`` creates a private cache.
        engine: ``"fast"`` (two-stage, cached, table-driven schedulers),
            ``"incremental"`` (the fast path plus cross-factor reuse; see
            the module docstring), or ``"reference"`` (the original
            single-stage path; bit-identical results, used as the bench
            baseline).
    """

    def __init__(
        self,
        machine: MachineModel = ITANIUM2,
        swp: bool = False,
        plan: OptimizationPlan | None = None,
        analysis: AnalysisCache | None = None,
        engine: str = "fast",
    ):
        if engine not in ("fast", "incremental", "reference"):
            raise ValueError(
                "engine must be 'fast', 'incremental', or 'reference', "
                f"got {engine!r}"
            )
        self.machine = machine
        self.swp = swp
        self.plan = plan or OptimizationPlan()
        self.engine = engine
        self.analysis = analysis if analysis is not None else AnalysisCache()
        self._latency_cache: dict[str, int] = {}
        self._floor_cache: dict[str, float] = {}
        self._machine_variants: dict[int, MachineModel] = {}
        # Incremental-engine state (inert for the other engines).
        self._stores: "OrderedDict[str, _LoopStore]" = OrderedDict()
        self._store_cap = 1024
        self._overlap_memo: dict = {}
        self.incremental_hits = 0
        self.incremental_misses = 0

    # ------------------------------------------------------------------

    def loop_cost(self, loop: Loop, factor: int) -> LoopCost:
        """Cycles per program run for ``loop`` unrolled by ``factor``."""
        if self.engine == "reference":
            return self._loop_cost_reference(loop, factor)
        analysis = self.analyze(loop, factor)
        return self._cost_from_analysis(loop, analysis)

    def sweep(self, loop: Loop) -> dict[int, LoopCost]:
        """Costs at every unroll factor in the label space."""
        from repro.ir.types import UNROLL_FACTORS

        return {factor: self.loop_cost(loop, factor) for factor in UNROLL_FACTORS}

    # ------------------------------------------------------------------
    # Stage 1: regime-independent analysis (cached).
    # ------------------------------------------------------------------

    def analyze(self, loop: Loop, factor: int) -> LoopAnalysis:
        """The cached analysis stage for ``(loop, factor)`` under this
        model's plan and base machine."""
        key = (loop.name, factor, self.plan)
        entry = self.analysis.get(key, loop, self.machine)
        if entry is None:
            entry = self._build_analysis(loop, factor)
            self.analysis.put(key, entry)
        return entry

    def _build_analysis(self, loop: Loop, factor: int) -> LoopAnalysis:
        if self.engine == "incremental":
            return self._build_analysis_incremental(loop, factor)
        machine = self._machine_for(loop)
        bw_floor = self._bandwidth_floor(loop)
        result = optimize_for_factor(loop, factor, self.plan)
        main_deps = main_pre = rem_deps = rem_pre = None
        if result.main is not None:
            main_deps = analyze_dependences(result.main)
            main_pre = SchedPrecomp.build(main_deps, machine)
        if result.remainder is not None:
            rem_deps = analyze_dependences(result.remainder)
            rem_pre = SchedPrecomp.build(rem_deps, machine)
        return LoopAnalysis(
            loop=loop,
            base_machine=self.machine,
            machine=machine,
            bw_floor=bw_floor,
            result=result,
            main_deps=main_deps,
            main_pre=main_pre,
            rem_deps=rem_deps,
            rem_pre=rem_pre,
        )

    # ------------------------------------------------------------------
    # Incremental engine: cross-factor analysis reuse.
    # ------------------------------------------------------------------

    def _build_analysis_incremental(self, loop: Loop, factor: int) -> LoopAnalysis:
        if not (1 <= factor <= MAX_UNROLL):
            raise ValueError(
                f"unroll factor must be in [1, {MAX_UNROLL}], got {factor}"
            )
        trip = loop.trip
        if trip.known:
            effective = min(factor, trip.compile_time)
            if effective != factor:
                # Clamp sharing: unroll() produces identical output for
                # every requested factor above the compile-time trip count,
                # differing only in ``requested_factor`` — so the clamped
                # factor's analysis (cached under its own key) is reused
                # wholesale, cells included.
                self.incremental_hits += 1
                base_entry = self.analyze(loop, effective)
                result = dataclasses.replace(
                    base_entry.result, requested_factor=factor
                )
                return dataclasses.replace(base_entry, result=result)
        store = self._store_for(loop)
        machine = self._machine_for(loop)
        bw_floor = self._bandwidth_floor(loop)
        result = self._optimize_incremental(loop, factor, store)
        main_deps = main_pre = rem_deps = rem_pre = None
        main_cell = rem_cell = None
        if result.main is not None:
            main_deps = analyze_dependences(
                result.main, overlap_memo=self._overlap_memo
            )
            main_pre = SchedPrecomp.build(main_deps, machine)
            main_cell = _SchedCell()
        if result.remainder is not None:
            if store.rem_shared is None:
                # Remainder sharing: dependence distances, scheduler
                # tables, and the scheduling scalars are invariant under
                # the per-factor base-offset shift, so the first factor's
                # remainder analysis serves every factor of this loop.
                self.incremental_misses += 1
                rem_deps = analyze_dependences(
                    result.remainder, overlap_memo=self._overlap_memo
                )
                rem_pre = SchedPrecomp.build(rem_deps, machine)
                store.rem_shared = (rem_deps, rem_pre)
                store.rem_cell = _SchedCell()
            else:
                self.incremental_hits += 1
                rem_deps, rem_pre = store.rem_shared
            rem_cell = store.rem_cell
        return LoopAnalysis(
            loop=loop,
            base_machine=self.machine,
            machine=machine,
            bw_floor=bw_floor,
            result=result,
            main_deps=main_deps,
            main_pre=main_pre,
            rem_deps=rem_deps,
            rem_pre=rem_pre,
            main_cell=main_cell,
            rem_cell=rem_cell,
        )

    def _store_for(self, loop: Loop) -> _LoopStore:
        """The per-loop incremental store, verified against the loop the
        way :class:`AnalysisCache` verifies its entries (hand-built suites
        may reuse names across different loops)."""
        store = self._stores.get(loop.name)
        if store is not None and (store.loop is loop or store.loop == loop):
            self._stores.move_to_end(loop.name)
            return store
        store = _LoopStore(loop)
        self._stores[loop.name] = store
        self._stores.move_to_end(loop.name)
        while len(self._stores) > self._store_cap:
            self._stores.popitem(last=False)
        return store

    def _optimize_incremental(
        self, loop: Loop, factor: int, store: _LoopStore
    ) -> UnrollResult:
        """:func:`optimize_for_factor` with the unroll stage replaced by
        row-cached replication.  Validation, trip handling, and the cleanup
        pipeline mirror the from-scratch path line for line."""
        if loop.unroll_factor != 1:
            raise ValueError(f"loop {loop.name!r} is already unrolled")
        trip = loop.trip
        effective = factor
        if trip.known:
            effective = min(factor, trip.compile_time)
        if effective == 1:
            result = UnrollResult(
                original=loop,
                requested_factor=factor,
                factor=1,
                main=loop,
                remainder=None,
                remainder_emitted=False,
                needs_precondition=False,
            )
        elif trip.counted:
            result = self._unroll_counted_incremental(loop, factor, effective, store)
        else:
            result = self._unroll_while_incremental(loop, factor, effective, store)
        main = result.main
        if main is None:
            return result
        if self.plan.scalar_replacement:
            main = scalar_replace(main)
        if self.plan.coalescing:
            main = coalesce_loads(main)
        if self.plan.dead_code_elimination:
            main = eliminate_dead_code(main)
        if main is result.main:
            return result
        return dataclasses.replace(result, main=main)

    def _unroll_counted_incremental(
        self, loop: Loop, requested: int, u: int, store: _LoopStore
    ) -> UnrollResult:
        trip = loop.trip
        total = trip.runtime
        main_trips = total // u
        leftover = total % u

        main = None
        if main_trips > 0:
            main = loop.with_body(
                self._unrolled_body_cached(loop, u, store),
                trip=TripInfo(
                    runtime=main_trips,
                    compile_time=main_trips if trip.known else None,
                    counted=True,
                ),
                unroll_factor=u,
                name=f"{loop.name}#u{u}",
            )

        remainder = None
        if leftover > 0:
            remainder = loop.with_body(
                self._retargeted_body_cached(loop, main_trips * u, store),
                trip=TripInfo(
                    runtime=leftover,
                    compile_time=leftover if trip.known else None,
                    counted=True,
                ),
                unroll_factor=1,
                name=f"{loop.name}#rem",
            )

        remainder_emitted = (leftover > 0) if trip.known else True
        return UnrollResult(
            original=loop,
            requested_factor=requested,
            factor=u,
            main=main,
            remainder=remainder,
            remainder_emitted=remainder_emitted,
            needs_precondition=not trip.known,
        )

    def _unroll_while_incremental(
        self, loop: Loop, requested: int, u: int, store: _LoopStore
    ) -> UnrollResult:
        if not loop.has_early_exit:
            raise ValueError(
                f"non-counted loop {loop.name!r} has no exit branch; its trip "
                "semantics would be undefined"
            )
        total = loop.trip.runtime
        main = loop.with_body(
            self._unrolled_body_cached(loop, u, store),
            trip=TripInfo(runtime=-(-total // u), compile_time=None, counted=False),
            unroll_factor=u,
            name=f"{loop.name}#u{u}",
        )
        return UnrollResult(
            original=loop,
            requested_factor=requested,
            factor=u,
            main=main,
            remainder=None,
            remainder_emitted=False,
            needs_precondition=False,
        )

    def _unrolled_body_cached(
        self, loop: Loop, u: int, store: _LoopStore
    ) -> tuple[Instruction, ...]:
        """``_unrolled_body(loop, u, base=0)`` with the renamed rows of each
        copy cached across factors; only the memory retargeting (which
        depends on ``u``) runs per factor."""
        body: list[Instruction] = []
        for k in range(u):
            for row in self._copy_rows(loop, k, k == u - 1, store):
                body.append(row.with_unrolled_mem(u, k, 0))
        return tuple(body)

    def _copy_rows(
        self, loop: Loop, k: int, is_last: bool, store: _LoopStore
    ) -> tuple[Instruction, ...]:
        """The renamed (but not yet memory-retargeted) rows of copy ``k``.

        The rename of copy ``k`` reads only copy ``k - 1``'s names — after
        copies ``0..k-1`` every destination's current name carries the
        ``.{k-1}`` suffix, because every non-final copy renames every
        destination — so the rows depend on ``(k, is_last)`` alone and are
        shared by every factor ``u`` with ``u > k`` (``is_last`` selects the
        carried write-back of copy ``u - 1``).
        """
        key = (k, is_last)
        rows = store.rows.get(key)
        if rows is not None:
            self.incremental_hits += 1
            return rows
        self.incremental_misses += 1
        carried = store.carried
        current: dict[Reg, Reg] = {}
        if k > 0:
            for inst in loop.body:
                for dest in inst.reg_dests():
                    current[dest] = Reg(f"{dest.name}.{k - 1}", dest.dtype)
        built: list[Instruction] = []
        for inst in loop.body:
            src_map = {
                reg: current[reg]
                for reg in inst.reg_srcs()
                if reg in current and current[reg] != reg
            }
            dest_map: dict[Reg, Reg] = {}
            for dest in inst.reg_dests():
                if dest in carried and is_last:
                    dest_map[dest] = dest
                else:
                    dest_map[dest] = Reg(f"{dest.name}.{k}", dest.dtype)
            built.append(inst.rewritten(src_map, dest_map))
            current.update(dest_map)
        rows = tuple(built)
        store.rows[key] = rows
        return rows

    def _retargeted_body_cached(
        self, loop: Loop, base: int, store: _LoopStore
    ) -> tuple[Instruction, ...]:
        """``_retargeted_body(loop, base)`` with the fresh-identity clone
        built once; only the per-factor rebase allocates."""
        rows = store.retargeted
        if rows is None:
            rows = tuple(inst.rewritten({}, {}) for inst in loop.body)
            store.retargeted = rows
        if base == 0:
            return rows
        return tuple(row.with_unrolled_mem(1, 0, base) for row in rows)

    # ------------------------------------------------------------------
    # Stage 2: per-regime scheduling and cost assembly.
    # ------------------------------------------------------------------

    def _cost_from_analysis(self, loop: Loop, analysis: LoopAnalysis) -> LoopCost:
        result = analysis.result
        machine = analysis.machine
        bw_floor = analysis.bw_floor

        main_cycles = 0.0
        main_period = 0.0
        ii = stages = None
        spill = 0.0
        swp_used = False

        if result.main is not None:
            (
                main_cycles,
                main_period,
                ii,
                stages,
                spill,
                swp_used,
            ) = self._part_cycles(
                result.main,
                analysis.main_deps,
                analysis.main_pre,
                machine,
                bw_floor,
                allow_swp=True,
                cell=analysis.main_cell,
            )

        rem_cycles = 0.0
        if result.remainder is not None:
            rem_cycles, _, _, _, rem_spill, _ = self._part_cycles(
                result.remainder,
                analysis.rem_deps,
                analysis.rem_pre,
                machine,
                bw_floor,
                allow_swp=False,
                cell=analysis.rem_cell,
            )
            spill += rem_spill

        icache = icache_entry_penalty(result.emitted_size, machine)
        precondition = 0
        if result.needs_precondition:
            precondition = machine.precondition_cycles
            if result.factor & (result.factor - 1):  # not a power of two
                precondition += machine.nonpow2_precondition_cycles
        exit_cost = 0.0
        if loop.has_early_exit:
            # The final (taken) exit branch mispredicts once per entry, and
            # an unrolled body overshoots: on average (factor-1)/2 copies of
            # work issue past the exiting iteration before the branch
            # resolves — the paper's speculation-gone-wrong cost.
            exit_cost = machine.exit_mispredict_cycles
            if result.factor > 1 and main_period > 0:
                # Beyond the wasted copies themselves, speculatively issued
                # memory accesses past the exit pollute the cache/TLB, so
                # the effective waste is closer to a full body's worth.
                wasted_copies = (result.factor - 1) * 0.8
                exit_cost += wasted_copies * (main_period / result.factor)

        per_entry = (
            main_cycles
            + rem_cycles
            + icache
            + precondition
            + exit_cost
            + ENTRY_OVERHEAD
        )
        total = per_entry * loop.entry_count
        return LoopCost(
            loop_name=loop.name,
            factor=result.requested_factor,
            swp_requested=self.swp,
            swp_used=swp_used,
            total_cycles=total,
            per_entry_cycles=per_entry,
            main_period=main_period,
            ii=ii,
            stages=stages,
            spill_penalty=spill,
            icache_penalty=icache,
            precondition_penalty=precondition,
            emitted_instructions=result.emitted_size,
        )

    def _part_cycles(
        self,
        part: Loop,
        deps: DependenceGraph,
        pre: SchedPrecomp,
        machine: MachineModel,
        bw_floor: float,
        allow_swp: bool,
        cell: _SchedCell | None = None,
    ) -> tuple[float, float, int | None, int | None, float, bool]:
        """Cycles per entry for one loop part (main or remainder).

        ``bw_floor`` is the loop's bandwidth-imposed minimum cycles per
        original iteration; one body execution covers ``unroll_factor``
        iterations, so the body period is floored at ``bw_floor * factor``.

        ``cell``, when given, memoises the list path's scheduling scalars
        across queries of the same analysis entry (the second SWP regime,
        factors sharing a remainder); the arithmetic past the scalars runs
        unconditionally, in the original order, so hits are bit-identical.

        Returns ``(cycles, period, ii, stages, spill, swp_used)``.
        """
        trips = part.trip.runtime
        body_floor = bw_floor * part.unroll_factor

        if allow_swp and self.swp and part.swp_eligible and trips > 1:
            # trips <= 1 can never satisfy the ``trips > kernel.stages``
            # guard below (a kernel has at least one stage), so the modulo
            # scheduling attempt is skipped outright — bit-identical, the
            # kernel would have been discarded.
            try:
                kernel = modulo_schedule(deps, machine, pre=pre)
            except ModuloScheduleError:
                kernel = None
            if kernel is not None and trips > kernel.stages:
                int_need, fp_need = swp_register_pressure(deps, kernel)
                rotating = machine.rotating_regs
                excess = max(0, int_need - rotating) + max(0, fp_need - rotating)
                ii_eff = kernel.ii + -(-excess // 4) if excess else kernel.ii
                ii_eff = max(ii_eff, int(-(-body_floor // 1)))  # ceil of the floor
                cycles = (trips + kernel.stages - 1) * ii_eff + SWP_SETUP
                return (
                    float(cycles),
                    float(ii_eff),
                    ii_eff,
                    kernel.stages,
                    0.0,
                    True,
                )

        if cell is not None and cell.value is not None:
            self.incremental_hits += 1
            steady, pressure = cell.value
        else:
            schedule = list_schedule(deps, machine, pre=pre)
            pressure = max_live(deps, schedule)
            steady = steady_state_cycles(deps, schedule, machine, pre=pre)
            if cell is not None:
                self.incremental_misses += 1
                cell.value = (steady, pressure)
        base_period = max(steady, body_floor)
        # Spill cost is bounded relative to the loop itself: the allocator
        # spills cheapest-first, so over-unrolling degrades, never explodes.
        spill = min(
            spill_cycles(pressure, machine),
            machine.spill_cap_fraction * base_period,
        )
        # The bandwidth floor caps how far ILP can compress the schedule,
        # but spill traffic and the backedge update group ride *on top* of
        # it: spills add memory traffic of their own, and the induction
        # update issues in its own group at the backedge.
        period = base_period + spill
        if part.unroll_factor & (part.unroll_factor - 1):
            period += machine.nonpow2_body_cycles
        return float(trips * period), float(period), None, None, spill * trips, False

    # ------------------------------------------------------------------
    # Shared per-loop memory analyses (regime- and factor-independent).
    # ------------------------------------------------------------------

    def _effective_latency(self, loop: Loop) -> int:
        cached = self._latency_cache.get(loop.name)
        if cached is None:
            cached = effective_load_latency(loop, self.machine)
            self._latency_cache[loop.name] = cached
        return cached

    def _machine_for(self, loop: Loop) -> MachineModel:
        """The base machine with ``loop``'s effective load latency.

        Variants are memoised per latency so loops with the same cache
        behaviour share one machine instance (and therefore one scheduler
        opcode-row cache) instead of rebuilding the description per loop.
        """
        eff_latency = self._effective_latency(loop)
        machine = self._machine_variants.get(eff_latency)
        if machine is None:
            machine = self.machine.with_load_latency(eff_latency)
            self._machine_variants[eff_latency] = machine
        return machine

    def _bandwidth_floor(self, loop: Loop) -> float:
        cached = self._floor_cache.get(loop.name)
        if cached is None:
            cached = bandwidth_floor_per_iteration(loop, self.machine)
            self._floor_cache[loop.name] = cached
        return cached

    # ------------------------------------------------------------------
    # Reference engine: the original single-stage path, retained as the
    # bench baseline and equivalence oracle.
    # ------------------------------------------------------------------

    def _loop_cost_reference(self, loop: Loop, factor: int) -> LoopCost:
        machine = self._machine_for(loop)
        bw_floor = self._bandwidth_floor(loop)
        result = optimize_for_factor(loop, factor, self.plan)

        main_cycles = 0.0
        main_period = 0.0
        ii = stages = None
        spill = 0.0
        swp_used = False

        if result.main is not None:
            (
                main_cycles,
                main_period,
                ii,
                stages,
                spill,
                swp_used,
            ) = self._part_cycles_reference(result.main, machine, bw_floor, allow_swp=True)

        rem_cycles = 0.0
        if result.remainder is not None:
            rem_cycles, _, _, _, rem_spill, _ = self._part_cycles_reference(
                result.remainder, machine, bw_floor, allow_swp=False
            )
            spill += rem_spill

        icache = icache_entry_penalty(result.emitted_size, machine)
        precondition = 0
        if result.needs_precondition:
            precondition = machine.precondition_cycles
            if result.factor & (result.factor - 1):  # not a power of two
                precondition += machine.nonpow2_precondition_cycles
        exit_cost = 0.0
        if loop.has_early_exit:
            # See _cost_from_analysis for the speculation-gone-wrong story.
            exit_cost = machine.exit_mispredict_cycles
            if result.factor > 1 and main_period > 0:
                wasted_copies = (result.factor - 1) * 0.8
                exit_cost += wasted_copies * (main_period / result.factor)

        per_entry = (
            main_cycles
            + rem_cycles
            + icache
            + precondition
            + exit_cost
            + ENTRY_OVERHEAD
        )
        total = per_entry * loop.entry_count
        return LoopCost(
            loop_name=loop.name,
            factor=factor,
            swp_requested=self.swp,
            swp_used=swp_used,
            total_cycles=total,
            per_entry_cycles=per_entry,
            main_period=main_period,
            ii=ii,
            stages=stages,
            spill_penalty=spill,
            icache_penalty=icache,
            precondition_penalty=precondition,
            emitted_instructions=result.emitted_size,
        )

    def _part_cycles_reference(
        self, part: Loop, machine: MachineModel, bw_floor: float, allow_swp: bool
    ) -> tuple[float, float, int | None, int | None, float, bool]:
        """Single-stage part costing: re-analyse and schedule with the
        table-free reference schedulers."""
        deps = analyze_dependences(part)
        trips = part.trip.runtime
        body_floor = bw_floor * part.unroll_factor

        if allow_swp and self.swp and part.swp_eligible:
            try:
                kernel = modulo_schedule_reference(deps, machine)
            except ModuloScheduleError:
                kernel = None
            if kernel is not None and trips > kernel.stages:
                int_need, fp_need = swp_register_pressure(deps, kernel)
                rotating = machine.rotating_regs
                excess = max(0, int_need - rotating) + max(0, fp_need - rotating)
                ii_eff = kernel.ii + -(-excess // 4) if excess else kernel.ii
                ii_eff = max(ii_eff, int(-(-body_floor // 1)))  # ceil of the floor
                cycles = (trips + kernel.stages - 1) * ii_eff + SWP_SETUP
                return (
                    float(cycles),
                    float(ii_eff),
                    ii_eff,
                    kernel.stages,
                    0.0,
                    True,
                )

        schedule = list_schedule_reference(deps, machine)
        pressure = max_live(deps, schedule)
        base_period = max(steady_state_cycles_reference(deps, schedule, machine), body_floor)
        spill = min(
            spill_cycles(pressure, machine),
            machine.spill_cap_fraction * base_period,
        )
        period = base_period + spill
        if part.unroll_factor & (part.unroll_factor - 1):
            period += machine.nonpow2_body_cycles
        return float(trips * period), float(period), None, None, spill * trips, False
