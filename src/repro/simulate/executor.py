"""The loop cycle simulator.

``CostModel.loop_cost(loop, factor)`` answers the question the paper answers
with a real Itanium 2: *how many cycles does this loop take per program run
when unrolled by this factor?*  The answer is emergent, not a formula: the
loop is actually unrolled, cleaned up (scalar replacement, coalescing, DCE),
dependence-analyzed, and scheduled — acyclically when software pipelining is
off, by iterative modulo scheduling when it is on — on the chosen machine
description, with register-pressure spills, I-cache overflow, trip-count
preconditioning, and early-exit costs layered on top.

Because every term comes from the same IR the feature extractor reads, the
optimal unroll factor is a learnable (but noisy and non-obvious) function of
the loop's static characteristics — the property all of the paper's
experiments rest on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dependence import analyze_dependences
from repro.ir.loop import Loop
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.sched.list_scheduler import list_schedule, steady_state_cycles
from repro.sched.modulo import ModuloScheduleError, modulo_schedule, swp_register_pressure
from repro.sched.regpressure import max_live, spill_cycles
from repro.simulate.cache import (
    bandwidth_floor_per_iteration,
    effective_load_latency,
    icache_entry_penalty,
)
from repro.transforms.pipeline import OptimizationPlan, optimize_for_factor
from repro.transforms.unroll import UnrollResult

#: Fixed cycles to enter a loop (live-in setup, first-bundle fetch).
ENTRY_OVERHEAD = 3

#: Process-local cost-model registry, keyed by (machine name, swp).
#: See :func:`shared_cost_model`.
_SHARED_MODELS: dict[tuple[str, bool], "CostModel"] = {}


def shared_cost_model(machine: MachineModel, swp: bool) -> "CostModel":
    """Process-local memoised :class:`CostModel` — the worker-safe entry
    point for the parallel measurement pipeline.

    Each worker process reuses one model per (machine, swp) regime across
    all the work units it executes, so the per-loop analysis caches
    (effective load latency, bandwidth floor) amortise across the eight
    unroll factors of a benchmark just as they do in a serial run.  The
    caches are keyed by loop name, which is unique within a generated
    suite; callers measuring hand-built suites with colliding loop names
    should construct their own :class:`CostModel`.
    """
    key = (machine.name, swp)
    model = _SHARED_MODELS.get(key)
    if model is None or model.machine != machine:
        model = CostModel(machine=machine, swp=swp)
        _SHARED_MODELS[key] = model
    return model


def reset_shared_cost_models() -> None:
    """Drop all process-local shared cost models (pool initializer: forked
    workers must not inherit the parent's analysis caches)."""
    _SHARED_MODELS.clear()

#: Fixed cycles to set up a software-pipelined kernel (rotating-register
#: initialisation, predicate staging).
SWP_SETUP = 6


@dataclass(frozen=True)
class LoopCost:
    """Cycle cost of one (loop, unroll factor) configuration."""

    loop_name: str
    factor: int
    swp_requested: bool
    swp_used: bool
    total_cycles: float
    per_entry_cycles: float
    main_period: float
    ii: int | None
    stages: int | None
    spill_penalty: float
    icache_penalty: int
    precondition_penalty: int
    emitted_instructions: int


class CostModel:
    """Times loops on a machine description.

    Args:
        machine: target description (default: the Itanium 2 lookalike).
        swp: whether software pipelining is enabled (the paper's two
            regimes).
        plan: post-unroll cleanup switches (ablations toggle these).
    """

    def __init__(
        self,
        machine: MachineModel = ITANIUM2,
        swp: bool = False,
        plan: OptimizationPlan | None = None,
    ):
        self.machine = machine
        self.swp = swp
        self.plan = plan or OptimizationPlan()
        self._latency_cache: dict[str, int] = {}
        self._floor_cache: dict[str, float] = {}

    # ------------------------------------------------------------------

    def loop_cost(self, loop: Loop, factor: int) -> LoopCost:
        """Cycles per program run for ``loop`` unrolled by ``factor``."""
        eff_latency = self._effective_latency(loop)
        machine = self.machine.with_load_latency(eff_latency)
        bw_floor = self._bandwidth_floor(loop)
        result = optimize_for_factor(loop, factor, self.plan)

        main_cycles = 0.0
        main_period = 0.0
        ii = stages = None
        spill = 0.0
        swp_used = False

        if result.main is not None:
            (
                main_cycles,
                main_period,
                ii,
                stages,
                spill,
                swp_used,
            ) = self._part_cycles(result.main, machine, bw_floor, allow_swp=True)

        rem_cycles = 0.0
        if result.remainder is not None:
            rem_cycles, _, _, _, rem_spill, _ = self._part_cycles(
                result.remainder, machine, bw_floor, allow_swp=False
            )
            spill += rem_spill

        icache = icache_entry_penalty(result.emitted_size, machine)
        precondition = 0
        if result.needs_precondition:
            precondition = machine.precondition_cycles
            if result.factor & (result.factor - 1):  # not a power of two
                precondition += machine.nonpow2_precondition_cycles
        exit_cost = 0.0
        if loop.has_early_exit:
            # The final (taken) exit branch mispredicts once per entry, and
            # an unrolled body overshoots: on average (factor-1)/2 copies of
            # work issue past the exiting iteration before the branch
            # resolves — the paper's speculation-gone-wrong cost.
            exit_cost = machine.exit_mispredict_cycles
            if result.factor > 1 and main_period > 0:
                # Beyond the wasted copies themselves, speculatively issued
                # memory accesses past the exit pollute the cache/TLB, so
                # the effective waste is closer to a full body's worth.
                wasted_copies = (result.factor - 1) * 0.8
                exit_cost += wasted_copies * (main_period / result.factor)

        per_entry = (
            main_cycles
            + rem_cycles
            + icache
            + precondition
            + exit_cost
            + ENTRY_OVERHEAD
        )
        total = per_entry * loop.entry_count
        return LoopCost(
            loop_name=loop.name,
            factor=factor,
            swp_requested=self.swp,
            swp_used=swp_used,
            total_cycles=total,
            per_entry_cycles=per_entry,
            main_period=main_period,
            ii=ii,
            stages=stages,
            spill_penalty=spill,
            icache_penalty=icache,
            precondition_penalty=precondition,
            emitted_instructions=result.emitted_size,
        )

    def sweep(self, loop: Loop) -> dict[int, LoopCost]:
        """Costs at every unroll factor in the label space."""
        from repro.ir.types import UNROLL_FACTORS

        return {factor: self.loop_cost(loop, factor) for factor in UNROLL_FACTORS}

    # ------------------------------------------------------------------

    def _effective_latency(self, loop: Loop) -> int:
        cached = self._latency_cache.get(loop.name)
        if cached is None:
            cached = effective_load_latency(loop, self.machine)
            self._latency_cache[loop.name] = cached
        return cached

    def _bandwidth_floor(self, loop: Loop) -> float:
        cached = self._floor_cache.get(loop.name)
        if cached is None:
            cached = bandwidth_floor_per_iteration(loop, self.machine)
            self._floor_cache[loop.name] = cached
        return cached

    def _part_cycles(
        self, part: Loop, machine: MachineModel, bw_floor: float, allow_swp: bool
    ) -> tuple[float, float, int | None, int | None, float, bool]:
        """Cycles per entry for one loop part (main or remainder).

        ``bw_floor`` is the loop's bandwidth-imposed minimum cycles per
        original iteration; one body execution covers ``unroll_factor``
        iterations, so the body period is floored at ``bw_floor * factor``.

        Returns ``(cycles, period, ii, stages, spill, swp_used)``.
        """
        deps = analyze_dependences(part)
        trips = part.trip.runtime
        body_floor = bw_floor * part.unroll_factor

        if allow_swp and self.swp and part.swp_eligible:
            try:
                kernel = modulo_schedule(deps, machine)
            except ModuloScheduleError:
                kernel = None
            if kernel is not None and trips > kernel.stages:
                int_need, fp_need = swp_register_pressure(deps, kernel)
                rotating = machine.rotating_regs
                excess = max(0, int_need - rotating) + max(0, fp_need - rotating)
                ii_eff = kernel.ii + -(-excess // 4) if excess else kernel.ii
                ii_eff = max(ii_eff, int(-(-body_floor // 1)))  # ceil of the floor
                cycles = (trips + kernel.stages - 1) * ii_eff + SWP_SETUP
                return (
                    float(cycles),
                    float(ii_eff),
                    ii_eff,
                    kernel.stages,
                    0.0,
                    True,
                )

        schedule = list_schedule(deps, machine)
        pressure = max_live(deps, schedule)
        base_period = max(steady_state_cycles(deps, schedule, machine), body_floor)
        # Spill cost is bounded relative to the loop itself: the allocator
        # spills cheapest-first, so over-unrolling degrades, never explodes.
        spill = min(
            spill_cycles(pressure, machine),
            machine.spill_cap_fraction * base_period,
        )
        # The bandwidth floor caps how far ILP can compress the schedule,
        # but spill traffic and the backedge update group ride *on top* of
        # it: spills add memory traffic of their own, and the induction
        # update issues in its own group at the backedge.
        period = base_period + spill
        if part.unroll_factor & (part.unroll_factor - 1):
            period += machine.nonpow2_body_cycles
        return float(trips * period), float(period), None, None, spill * trips, False
