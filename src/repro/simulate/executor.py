"""The loop cycle simulator.

``CostModel.loop_cost(loop, factor)`` answers the question the paper answers
with a real Itanium 2: *how many cycles does this loop take per program run
when unrolled by this factor?*  The answer is emergent, not a formula: the
loop is actually unrolled, cleaned up (scalar replacement, coalescing, DCE),
dependence-analyzed, and scheduled — acyclically when software pipelining is
off, by iterative modulo scheduling when it is on — on the chosen machine
description, with register-pressure spills, I-cache overflow, trip-count
preconditioning, and early-exit costs layered on top.

Because every term comes from the same IR the feature extractor reads, the
optimal unroll factor is a learnable (but noisy and non-obvious) function of
the loop's static characteristics — the property all of the paper's
experiments rest on.

Costing splits into two stages:

* **Analysis** — unroll + cleanup (:func:`optimize_for_factor`), dependence
  analysis, and the scheduler's precomputed tables, none of which depend on
  whether software pipelining is enabled.  The stage is memoised in a
  bounded :class:`AnalysisCache` keyed by ``(loop name, factor, plan)`` (the
  plan *must* participate: ablations change the unrolled body), so the
  SWP-on and SWP-off regimes — and repeated queries within one regime —
  share one analysis per configuration.
* **Scheduling** — the per-regime part: list scheduling plus steady-state
  and spill terms, or modulo scheduling when SWP is on and the part is
  eligible.  Cheap relative to analysis, and never cached.

``engine="reference"`` bypasses both the cache and the table-driven
schedulers, running the original single-stage path — the baseline that
``repro-unroll bench`` compares against, and the oracle the equivalence
tests pin the fast path to.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass

from repro.ir.dependence import DependenceGraph, analyze_dependences
from repro.ir.loop import Loop
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.sched.list_scheduler import (
    list_schedule,
    list_schedule_reference,
    steady_state_cycles,
    steady_state_cycles_reference,
)
from repro.sched.modulo import (
    ModuloScheduleError,
    modulo_schedule,
    modulo_schedule_reference,
    swp_register_pressure,
)
from repro.resilience.faults import get_injector
from repro.sched.precompute import SchedPrecomp
from repro.sched.regpressure import max_live, spill_cycles
from repro.simulate.cache import (
    bandwidth_floor_per_iteration,
    effective_load_latency,
    icache_entry_penalty,
)
from repro.transforms.pipeline import OptimizationPlan, optimize_for_factor
from repro.transforms.unroll import UnrollResult

#: Fixed cycles to enter a loop (live-in setup, first-bundle fetch).
ENTRY_OVERHEAD = 3

#: Fixed cycles to set up a software-pipelined kernel (rotating-register
#: initialisation, predicate staging).
SWP_SETUP = 6


@dataclass(frozen=True)
class LoopCost:
    """Cycle cost of one (loop, unroll factor) configuration."""

    loop_name: str
    factor: int
    swp_requested: bool
    swp_used: bool
    total_cycles: float
    per_entry_cycles: float
    main_period: float
    ii: int | None
    stages: int | None
    spill_penalty: float
    icache_penalty: int
    precondition_penalty: int
    emitted_instructions: int


@dataclass(frozen=True)
class LoopAnalysis:
    """The regime-independent half of costing one (loop, factor, plan).

    Everything here is a pure function of the source loop, the unroll
    factor, the cleanup plan, and the *base* machine — software pipelining
    plays no part, so one analysis serves both scheduling regimes.
    """

    loop: Loop  # retained for structural verification on cache hits
    base_machine: MachineModel
    machine: MachineModel  # base machine with the loop's effective load latency
    bw_floor: float
    result: UnrollResult
    main_deps: DependenceGraph | None
    main_pre: SchedPrecomp | None
    rem_deps: DependenceGraph | None
    rem_pre: SchedPrecomp | None


class AnalysisCache:
    """Bounded LRU cache of :class:`LoopAnalysis` entries.

    Keys are ``(loop name, factor, plan)`` — loop names are unique within a
    generated suite, but hand-built suites may collide, so a hit is only
    honoured after verifying the stored loop is structurally equal to the
    queried one and was analysed under the same base machine (``Loop`` holds
    a dict field and cannot itself be a dict key).  A mismatch counts as a
    miss and the entry is replaced.

    One cache may be shared by several :class:`CostModel` instances — that
    sharing is the point: the SWP-on and SWP-off models of a measurement
    pair hit each other's analyses.  ``hits``/``misses`` counters feed the
    measurement rollup.
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, LoopAnalysis]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, key: tuple, loop: Loop, base_machine: MachineModel
    ) -> LoopAnalysis | None:
        entry = self._entries.get(key)
        if entry is not None:
            injector = get_injector()
            if injector.active and injector.fire(
                "analysis.poison", f"{key[0]}:f{key[1]}"
            ):
                # Deterministic in-memory corruption: wipe the provenance so
                # the structural verification below must reject the entry —
                # the self-heal path (miss, recompute, overwrite) is then
                # exercised by a real bad entry rather than a mock.
                entry = dataclasses.replace(entry, base_machine=None)
                self._entries[key] = entry
        if (
            entry is not None
            and entry.loop == loop
            and entry.base_machine == base_machine
        ):
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, key: tuple, entry: LoopAnalysis) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are preserved: they describe the
        lifetime of the cache, not its current contents)."""
        self._entries.clear()


#: Process-local cost-model registry, keyed by (machine name, swp).
#: See :func:`shared_cost_model`.
_SHARED_MODELS: dict[tuple[str, bool], "CostModel"] = {}

#: Process-local analysis caches shared by both regimes of one machine.
_SHARED_ANALYSIS: dict[str, AnalysisCache] = {}


def shared_analysis_cache(machine: MachineModel) -> AnalysisCache:
    """The process-local :class:`AnalysisCache` for ``machine`` — one per
    machine, shared by the SWP-on and SWP-off shared cost models so a work
    unit measured in both regimes analyses each loop once."""
    cache = _SHARED_ANALYSIS.get(machine.name)
    if cache is None:
        cache = AnalysisCache()
        _SHARED_ANALYSIS[machine.name] = cache
    return cache


def shared_cost_model(machine: MachineModel, swp: bool) -> "CostModel":
    """Process-local memoised :class:`CostModel` — the worker-safe entry
    point for the parallel measurement pipeline.

    Each worker process reuses one model per (machine, swp) regime across
    all the work units it executes, so the per-loop analysis caches
    (effective load latency, bandwidth floor) amortise across the eight
    unroll factors of a benchmark just as they do in a serial run; the two
    regimes additionally share one :class:`AnalysisCache` via
    :func:`shared_analysis_cache`.  The caches are keyed by loop name,
    which is unique within a generated suite; callers measuring hand-built
    suites with colliding loop names should construct their own
    :class:`CostModel`.
    """
    key = (machine.name, swp)
    model = _SHARED_MODELS.get(key)
    if model is None or model.machine != machine:
        model = CostModel(machine=machine, swp=swp, analysis=shared_analysis_cache(machine))
        _SHARED_MODELS[key] = model
    return model


def reset_shared_cost_models() -> None:
    """Drop all process-local shared cost models and analysis caches (pool
    initializer: forked workers must not inherit the parent's caches)."""
    _SHARED_MODELS.clear()
    _SHARED_ANALYSIS.clear()


class CostModel:
    """Times loops on a machine description.

    Args:
        machine: target description (default: the Itanium 2 lookalike).
        swp: whether software pipelining is enabled (the paper's two
            regimes).
        plan: post-unroll cleanup switches (ablations toggle these).
        analysis: the analysis cache to use; pass a shared instance to let
            several models (typically the two SWP regimes) reuse each
            other's analyses.  ``None`` creates a private cache.
        engine: ``"fast"`` (two-stage, cached, table-driven schedulers) or
            ``"reference"`` (the original single-stage path; bit-identical
            results, used as the bench baseline).
    """

    def __init__(
        self,
        machine: MachineModel = ITANIUM2,
        swp: bool = False,
        plan: OptimizationPlan | None = None,
        analysis: AnalysisCache | None = None,
        engine: str = "fast",
    ):
        if engine not in ("fast", "reference"):
            raise ValueError(f"engine must be 'fast' or 'reference', got {engine!r}")
        self.machine = machine
        self.swp = swp
        self.plan = plan or OptimizationPlan()
        self.engine = engine
        self.analysis = analysis if analysis is not None else AnalysisCache()
        self._latency_cache: dict[str, int] = {}
        self._floor_cache: dict[str, float] = {}
        self._machine_variants: dict[int, MachineModel] = {}

    # ------------------------------------------------------------------

    def loop_cost(self, loop: Loop, factor: int) -> LoopCost:
        """Cycles per program run for ``loop`` unrolled by ``factor``."""
        if self.engine == "reference":
            return self._loop_cost_reference(loop, factor)
        analysis = self.analyze(loop, factor)
        return self._cost_from_analysis(loop, analysis)

    def sweep(self, loop: Loop) -> dict[int, LoopCost]:
        """Costs at every unroll factor in the label space."""
        from repro.ir.types import UNROLL_FACTORS

        return {factor: self.loop_cost(loop, factor) for factor in UNROLL_FACTORS}

    # ------------------------------------------------------------------
    # Stage 1: regime-independent analysis (cached).
    # ------------------------------------------------------------------

    def analyze(self, loop: Loop, factor: int) -> LoopAnalysis:
        """The cached analysis stage for ``(loop, factor)`` under this
        model's plan and base machine."""
        key = (loop.name, factor, self.plan)
        entry = self.analysis.get(key, loop, self.machine)
        if entry is None:
            entry = self._build_analysis(loop, factor)
            self.analysis.put(key, entry)
        return entry

    def _build_analysis(self, loop: Loop, factor: int) -> LoopAnalysis:
        machine = self._machine_for(loop)
        bw_floor = self._bandwidth_floor(loop)
        result = optimize_for_factor(loop, factor, self.plan)
        main_deps = main_pre = rem_deps = rem_pre = None
        if result.main is not None:
            main_deps = analyze_dependences(result.main)
            main_pre = SchedPrecomp.build(main_deps, machine)
        if result.remainder is not None:
            rem_deps = analyze_dependences(result.remainder)
            rem_pre = SchedPrecomp.build(rem_deps, machine)
        return LoopAnalysis(
            loop=loop,
            base_machine=self.machine,
            machine=machine,
            bw_floor=bw_floor,
            result=result,
            main_deps=main_deps,
            main_pre=main_pre,
            rem_deps=rem_deps,
            rem_pre=rem_pre,
        )

    # ------------------------------------------------------------------
    # Stage 2: per-regime scheduling and cost assembly.
    # ------------------------------------------------------------------

    def _cost_from_analysis(self, loop: Loop, analysis: LoopAnalysis) -> LoopCost:
        result = analysis.result
        machine = analysis.machine
        bw_floor = analysis.bw_floor

        main_cycles = 0.0
        main_period = 0.0
        ii = stages = None
        spill = 0.0
        swp_used = False

        if result.main is not None:
            (
                main_cycles,
                main_period,
                ii,
                stages,
                spill,
                swp_used,
            ) = self._part_cycles(
                result.main,
                analysis.main_deps,
                analysis.main_pre,
                machine,
                bw_floor,
                allow_swp=True,
            )

        rem_cycles = 0.0
        if result.remainder is not None:
            rem_cycles, _, _, _, rem_spill, _ = self._part_cycles(
                result.remainder,
                analysis.rem_deps,
                analysis.rem_pre,
                machine,
                bw_floor,
                allow_swp=False,
            )
            spill += rem_spill

        icache = icache_entry_penalty(result.emitted_size, machine)
        precondition = 0
        if result.needs_precondition:
            precondition = machine.precondition_cycles
            if result.factor & (result.factor - 1):  # not a power of two
                precondition += machine.nonpow2_precondition_cycles
        exit_cost = 0.0
        if loop.has_early_exit:
            # The final (taken) exit branch mispredicts once per entry, and
            # an unrolled body overshoots: on average (factor-1)/2 copies of
            # work issue past the exiting iteration before the branch
            # resolves — the paper's speculation-gone-wrong cost.
            exit_cost = machine.exit_mispredict_cycles
            if result.factor > 1 and main_period > 0:
                # Beyond the wasted copies themselves, speculatively issued
                # memory accesses past the exit pollute the cache/TLB, so
                # the effective waste is closer to a full body's worth.
                wasted_copies = (result.factor - 1) * 0.8
                exit_cost += wasted_copies * (main_period / result.factor)

        per_entry = (
            main_cycles
            + rem_cycles
            + icache
            + precondition
            + exit_cost
            + ENTRY_OVERHEAD
        )
        total = per_entry * loop.entry_count
        return LoopCost(
            loop_name=loop.name,
            factor=result.requested_factor,
            swp_requested=self.swp,
            swp_used=swp_used,
            total_cycles=total,
            per_entry_cycles=per_entry,
            main_period=main_period,
            ii=ii,
            stages=stages,
            spill_penalty=spill,
            icache_penalty=icache,
            precondition_penalty=precondition,
            emitted_instructions=result.emitted_size,
        )

    def _part_cycles(
        self,
        part: Loop,
        deps: DependenceGraph,
        pre: SchedPrecomp,
        machine: MachineModel,
        bw_floor: float,
        allow_swp: bool,
    ) -> tuple[float, float, int | None, int | None, float, bool]:
        """Cycles per entry for one loop part (main or remainder).

        ``bw_floor`` is the loop's bandwidth-imposed minimum cycles per
        original iteration; one body execution covers ``unroll_factor``
        iterations, so the body period is floored at ``bw_floor * factor``.

        Returns ``(cycles, period, ii, stages, spill, swp_used)``.
        """
        trips = part.trip.runtime
        body_floor = bw_floor * part.unroll_factor

        if allow_swp and self.swp and part.swp_eligible:
            try:
                kernel = modulo_schedule(deps, machine, pre=pre)
            except ModuloScheduleError:
                kernel = None
            if kernel is not None and trips > kernel.stages:
                int_need, fp_need = swp_register_pressure(deps, kernel)
                rotating = machine.rotating_regs
                excess = max(0, int_need - rotating) + max(0, fp_need - rotating)
                ii_eff = kernel.ii + -(-excess // 4) if excess else kernel.ii
                ii_eff = max(ii_eff, int(-(-body_floor // 1)))  # ceil of the floor
                cycles = (trips + kernel.stages - 1) * ii_eff + SWP_SETUP
                return (
                    float(cycles),
                    float(ii_eff),
                    ii_eff,
                    kernel.stages,
                    0.0,
                    True,
                )

        schedule = list_schedule(deps, machine, pre=pre)
        pressure = max_live(deps, schedule)
        base_period = max(steady_state_cycles(deps, schedule, machine, pre=pre), body_floor)
        # Spill cost is bounded relative to the loop itself: the allocator
        # spills cheapest-first, so over-unrolling degrades, never explodes.
        spill = min(
            spill_cycles(pressure, machine),
            machine.spill_cap_fraction * base_period,
        )
        # The bandwidth floor caps how far ILP can compress the schedule,
        # but spill traffic and the backedge update group ride *on top* of
        # it: spills add memory traffic of their own, and the induction
        # update issues in its own group at the backedge.
        period = base_period + spill
        if part.unroll_factor & (part.unroll_factor - 1):
            period += machine.nonpow2_body_cycles
        return float(trips * period), float(period), None, None, spill * trips, False

    # ------------------------------------------------------------------
    # Shared per-loop memory analyses (regime- and factor-independent).
    # ------------------------------------------------------------------

    def _effective_latency(self, loop: Loop) -> int:
        cached = self._latency_cache.get(loop.name)
        if cached is None:
            cached = effective_load_latency(loop, self.machine)
            self._latency_cache[loop.name] = cached
        return cached

    def _machine_for(self, loop: Loop) -> MachineModel:
        """The base machine with ``loop``'s effective load latency.

        Variants are memoised per latency so loops with the same cache
        behaviour share one machine instance (and therefore one scheduler
        opcode-row cache) instead of rebuilding the description per loop.
        """
        eff_latency = self._effective_latency(loop)
        machine = self._machine_variants.get(eff_latency)
        if machine is None:
            machine = self.machine.with_load_latency(eff_latency)
            self._machine_variants[eff_latency] = machine
        return machine

    def _bandwidth_floor(self, loop: Loop) -> float:
        cached = self._floor_cache.get(loop.name)
        if cached is None:
            cached = bandwidth_floor_per_iteration(loop, self.machine)
            self._floor_cache[loop.name] = cached
        return cached

    # ------------------------------------------------------------------
    # Reference engine: the original single-stage path, retained as the
    # bench baseline and equivalence oracle.
    # ------------------------------------------------------------------

    def _loop_cost_reference(self, loop: Loop, factor: int) -> LoopCost:
        machine = self._machine_for(loop)
        bw_floor = self._bandwidth_floor(loop)
        result = optimize_for_factor(loop, factor, self.plan)

        main_cycles = 0.0
        main_period = 0.0
        ii = stages = None
        spill = 0.0
        swp_used = False

        if result.main is not None:
            (
                main_cycles,
                main_period,
                ii,
                stages,
                spill,
                swp_used,
            ) = self._part_cycles_reference(result.main, machine, bw_floor, allow_swp=True)

        rem_cycles = 0.0
        if result.remainder is not None:
            rem_cycles, _, _, _, rem_spill, _ = self._part_cycles_reference(
                result.remainder, machine, bw_floor, allow_swp=False
            )
            spill += rem_spill

        icache = icache_entry_penalty(result.emitted_size, machine)
        precondition = 0
        if result.needs_precondition:
            precondition = machine.precondition_cycles
            if result.factor & (result.factor - 1):  # not a power of two
                precondition += machine.nonpow2_precondition_cycles
        exit_cost = 0.0
        if loop.has_early_exit:
            # See _cost_from_analysis for the speculation-gone-wrong story.
            exit_cost = machine.exit_mispredict_cycles
            if result.factor > 1 and main_period > 0:
                wasted_copies = (result.factor - 1) * 0.8
                exit_cost += wasted_copies * (main_period / result.factor)

        per_entry = (
            main_cycles
            + rem_cycles
            + icache
            + precondition
            + exit_cost
            + ENTRY_OVERHEAD
        )
        total = per_entry * loop.entry_count
        return LoopCost(
            loop_name=loop.name,
            factor=factor,
            swp_requested=self.swp,
            swp_used=swp_used,
            total_cycles=total,
            per_entry_cycles=per_entry,
            main_period=main_period,
            ii=ii,
            stages=stages,
            spill_penalty=spill,
            icache_penalty=icache,
            precondition_penalty=precondition,
            emitted_instructions=result.emitted_size,
        )

    def _part_cycles_reference(
        self, part: Loop, machine: MachineModel, bw_floor: float, allow_swp: bool
    ) -> tuple[float, float, int | None, int | None, float, bool]:
        """Single-stage part costing: re-analyse and schedule with the
        table-free reference schedulers."""
        deps = analyze_dependences(part)
        trips = part.trip.runtime
        body_floor = bw_floor * part.unroll_factor

        if allow_swp and self.swp and part.swp_eligible:
            try:
                kernel = modulo_schedule_reference(deps, machine)
            except ModuloScheduleError:
                kernel = None
            if kernel is not None and trips > kernel.stages:
                int_need, fp_need = swp_register_pressure(deps, kernel)
                rotating = machine.rotating_regs
                excess = max(0, int_need - rotating) + max(0, fp_need - rotating)
                ii_eff = kernel.ii + -(-excess // 4) if excess else kernel.ii
                ii_eff = max(ii_eff, int(-(-body_floor // 1)))  # ceil of the floor
                cycles = (trips + kernel.stages - 1) * ii_eff + SWP_SETUP
                return (
                    float(cycles),
                    float(ii_eff),
                    ii_eff,
                    kernel.stages,
                    0.0,
                    True,
                )

        schedule = list_schedule_reference(deps, machine)
        pressure = max_live(deps, schedule)
        base_period = max(steady_state_cycles_reference(deps, schedule, machine), body_floor)
        spill = min(
            spill_cycles(pressure, machine),
            machine.spill_cap_fraction * base_period,
        )
        period = base_period + spill
        if part.unroll_factor & (part.unroll_factor - 1):
            period += machine.nonpow2_body_cycles
        return float(trips * period), float(period), None, None, spill * trips, False
