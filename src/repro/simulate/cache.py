"""Cache behaviour models.

Two effects matter for unrolling and both are modelled here:

* **Instruction cache** — code expansion.  Unrolled bodies (plus the
  remainder copy) can outgrow the I-cache share a loop can realistically
  hold in a full program; the overflow is re-fetched on every loop entry.
  This is the paper's first listed drawback of unrolling, and it makes the
  trip-count and body-size features genuinely predictive.
* **Data cache** — each loop gets an *effective load latency*: the machine's
  base latency plus a stall component derived from the loop's strides,
  footprint, and indirect accesses.  Long effective latencies reward the
  extra ILP unrolling exposes (more independent loads in flight), short
  ones don't — another axis the classifiers must learn.
"""

from __future__ import annotations

from repro.ir.loop import Loop
from repro.machine.model import MachineModel

#: Array element size in bytes (all arrays are float64).
ELEMENT_BYTES = 8


def effective_load_latency(loop: Loop, machine: MachineModel) -> int:
    """Average load latency the loop observes, given its access patterns."""
    dcache = machine.dcache
    loads = [
        inst
        for inst in loop.body
        if inst.op.is_load and inst.mem is not None
    ]
    if not loads:
        return machine.load_latency

    footprint = _data_footprint_bytes(loop)
    if footprint <= dcache.l1_bytes:
        level_penalty = 0.0
    elif footprint <= dcache.l2_bytes:
        level_penalty = dcache.l2_penalty
    elif footprint <= dcache.l3_bytes:
        level_penalty = dcache.l3_penalty
    else:
        level_penalty = dcache.memory_penalty

    total_extra = 0.0
    for inst in loads:
        mem = inst.mem
        if mem.indirect:
            # Gathers miss at a fixed rate regardless of footprint level,
            # paying at least the L3 penalty.
            penalty = max(level_penalty, dcache.l3_penalty)
            total_extra += dcache.indirect_miss_rate * penalty
        else:
            stride_bytes = max(abs(mem.stride), 1) * ELEMENT_BYTES
            miss_rate = min(1.0, stride_bytes / dcache.line_bytes)
            if mem.stride == 0:
                miss_rate = 0.0  # loop-invariant scalar: always resident
            total_extra += miss_rate * level_penalty
    average_extra = total_extra / len(loads)
    return machine.load_latency + int(round(average_extra))


def _data_footprint_bytes(loop: Loop) -> int:
    """Bytes of distinct data the loop sweeps per entry."""
    spans: dict[str, int] = {}
    trips = loop.trip.runtime
    for inst in loop.body:
        mem = inst.mem
        if mem is None:
            continue
        if mem.indirect:
            span = loop.arrays.get(mem.array, trips) * ELEMENT_BYTES
        else:
            span = (abs(mem.stride) * (trips - 1) + mem.width) * ELEMENT_BYTES
        spans[mem.array] = max(spans.get(mem.array, 0), span)
    return sum(spans.values())


def bandwidth_floor_per_iteration(loop: Loop, machine: MachineModel) -> float:
    """Minimum cycles per *original* iteration imposed by memory bandwidth.

    A loop whose working set streams from L2/L3/memory cannot run faster
    than the level's sustained bandwidth allows, regardless of how many
    independent loads unrolling puts in flight.  This is why the paper-era
    wisdom says unrolling does nothing for bandwidth-bound loops: their
    per-iteration cost is flat in the unroll factor, and code-growth
    penalties then make *not* unrolling optimal.
    """
    dcache = machine.dcache
    footprint = _data_footprint_bytes(loop)
    if footprint <= dcache.l1_bytes:
        return 0.0
    if footprint <= dcache.l2_bytes:
        bandwidth = dcache.l2_bandwidth
    elif footprint <= dcache.l3_bytes:
        bandwidth = dcache.l3_bandwidth
    else:
        bandwidth = dcache.memory_bandwidth

    bytes_per_iter = 0.0
    for inst in loop.body:
        mem = inst.mem
        if mem is None or not inst.op.is_memory:
            continue
        if mem.indirect:
            # A gather touches a whole line per access, effectively.
            bytes_per_iter += dcache.line_bytes * dcache.indirect_miss_rate
        elif mem.stride != 0:
            # Unique bytes the reference consumes per iteration, capped at
            # one line (larger strides still fetch whole lines).
            line_elems = dcache.line_bytes // ELEMENT_BYTES
            stride_bytes = min(abs(mem.stride), line_elems) * ELEMENT_BYTES
            bytes_per_iter += stride_bytes * mem.width
    return bytes_per_iter / bandwidth


def icache_entry_penalty(emitted_instructions: int, machine: MachineModel) -> int:
    """Extra cycles *per loop entry* caused by code outgrowing the loop's
    I-cache share (the overflow streams back in every time)."""
    icache = machine.icache
    code_bytes = machine.code_bytes(emitted_instructions)
    overflow = code_bytes - icache.loop_budget_bytes
    if overflow <= 0:
        return 0
    overflow_lines = -(-overflow // icache.line_bytes)
    return overflow_lines * icache.miss_penalty
