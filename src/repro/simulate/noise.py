"""Measurement noise.

The paper measures loops with inserted cycle-counter instrumentation on real
hardware, in a "generally noisy environment" (Section 6.1); its noise
mitigations — median of 30 runs, a 50,000-cycle floor, a 1.05x labelling
margin — only make sense if the raw measurements wobble.  This module is the
wobble: a multiplicative lognormal term (OS jitter, drift), a per-entry
counter overhead (their instrumentation cost), and rare alignment outliers
(a loop that lands on an unfortunate cache boundary for one binary layout).

Everything is driven by an explicit :class:`numpy.random.Generator`, so the
whole labelling pipeline is reproducible from one root seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Parameters of the measurement-noise distribution.

    Attributes:
        sigma: scale of the lognormal multiplicative jitter.
        outlier_rate: probability that a measurement is an alignment
            outlier.
        outlier_scale: maximum multiplicative inflation of an outlier.
        counter_overhead: cycles added per loop entry by the
            instrumentation counters (the paper's lightweight assembly
            timers still cost a few cycles each).
    """

    sigma: float = 0.025
    outlier_rate: float = 0.02
    outlier_scale: float = 0.35
    counter_overhead: int = 9

    def samples(
        self,
        true_cycles: float,
        entry_count: int,
        rng: np.random.Generator,
        n: int = 30,
    ) -> np.ndarray:
        """Draw ``n`` simulated measurements of a loop's cumulative cycles."""
        base = float(true_cycles) + entry_count * self.counter_overhead
        jitter = rng.lognormal(mean=0.0, sigma=self.sigma, size=n)
        values = base * jitter
        outliers = rng.random(n) < self.outlier_rate
        if outliers.any():
            inflation = 1.0 + rng.random(int(outliers.sum())) * self.outlier_scale
            values[outliers] *= inflation
        return values

    def median_measurement(
        self,
        true_cycles: float,
        entry_count: int,
        rng: np.random.Generator,
        n: int = 30,
    ) -> float:
        """The paper's protocol: report the median of ``n`` measurements."""
        return float(np.median(self.samples(true_cycles, entry_count, rng, n)))


#: Noise-free measurements — used by tests that need exact arithmetic.
NOISELESS = NoiseModel(sigma=0.0, outlier_rate=0.0, counter_overhead=0)

#: The default model used by the full pipeline.
DEFAULT_NOISE = NoiseModel()
