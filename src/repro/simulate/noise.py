"""Measurement noise.

The paper measures loops with inserted cycle-counter instrumentation on real
hardware, in a "generally noisy environment" (Section 6.1); its noise
mitigations — median of 30 runs, a 50,000-cycle floor, a 1.05x labelling
margin — only make sense if the raw measurements wobble.  This module is the
wobble: a multiplicative lognormal term (OS jitter, drift), a per-entry
counter overhead (their instrumentation cost), and rare alignment outliers
(a loop that lands on an unfortunate cache boundary for one binary layout).

Everything is driven by an explicit :class:`numpy.random.Generator`, so the
whole labelling pipeline is reproducible from one root seed.

**Stream contract.**  For a batch of ``m`` loops measured ``n`` times each,
exactly three fixed-size blocks are consumed from the generator, in order:

1. ``m * n`` lognormal jitter values (row-major: loop 0's runs first);
2. ``m * n`` uniforms deciding which measurements are outliers;
3. ``m * n`` uniforms sizing the outlier inflation.

Every block is always drawn in full — which measurements *are* outliers
masks the inflation values, it never changes how many are drawn — so the
stream position after a batch depends only on ``(m, n)``, never on the
sampled data.  The scalar :meth:`NoiseModel.samples` is the ``m = 1`` row of
this contract, bit-identical to :meth:`NoiseModel.batch_samples` on a
one-row batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Parameters of the measurement-noise distribution.

    Attributes:
        sigma: scale of the lognormal multiplicative jitter.
        outlier_rate: probability that a measurement is an alignment
            outlier.
        outlier_scale: maximum multiplicative inflation of an outlier.
        counter_overhead: cycles added per loop entry by the
            instrumentation counters (the paper's lightweight assembly
            timers still cost a few cycles each).
    """

    sigma: float = 0.025
    outlier_rate: float = 0.02
    outlier_scale: float = 0.35
    counter_overhead: int = 9

    def batch_samples(
        self,
        true_cycles: np.ndarray,
        entry_counts: np.ndarray,
        rng: np.random.Generator,
        n: int = 30,
    ) -> np.ndarray:
        """Simulated measurements for a batch of loops.

        Args:
            true_cycles: ``(m,)`` noise-free cumulative cycles per loop.
            entry_counts: ``(m,)`` loop entry counts (for counter overhead).
            rng: the generator; consumes the three blocks of the module's
                stream contract.
            n: measurements per loop.

        Returns:
            ``(m, n)`` array, row ``i`` holding loop ``i``'s measurements.
        """
        base = (
            np.asarray(true_cycles, dtype=float)
            + np.asarray(entry_counts, dtype=float) * self.counter_overhead
        )
        m = base.shape[0]
        jitter = rng.lognormal(mean=0.0, sigma=self.sigma, size=(m, n))
        values = base[:, None] * jitter
        outliers = rng.random((m, n)) < self.outlier_rate
        inflation = 1.0 + rng.random((m, n)) * self.outlier_scale
        return np.where(outliers, values * inflation, values)

    def batch_medians(
        self,
        true_cycles: np.ndarray,
        entry_counts: np.ndarray,
        rng: np.random.Generator,
        n: int = 30,
    ) -> np.ndarray:
        """Per-loop median of ``n`` measurements for a batch of loops."""
        return np.median(self.batch_samples(true_cycles, entry_counts, rng, n), axis=1)

    def samples(
        self,
        true_cycles: float,
        entry_count: int,
        rng: np.random.Generator,
        n: int = 30,
    ) -> np.ndarray:
        """Draw ``n`` simulated measurements of a loop's cumulative cycles.

        The ``m = 1`` case of :meth:`batch_samples`: the same three blocks
        are consumed (``n`` jitters, ``n`` outlier uniforms, ``n`` inflation
        uniforms), so the generator advances by a data-independent amount.
        """
        return self.batch_samples(
            np.array([float(true_cycles)]), np.array([entry_count]), rng, n
        )[0]

    def median_measurement(
        self,
        true_cycles: float,
        entry_count: int,
        rng: np.random.Generator,
        n: int = 30,
    ) -> float:
        """The paper's protocol: report the median of ``n`` measurements."""
        return float(np.median(self.samples(true_cycles, entry_count, rng, n)))


#: Noise-free measurements — used by tests that need exact arithmetic.
NOISELESS = NoiseModel(sigma=0.0, outlier_rate=0.0, counter_overhead=0)

#: The default model used by the full pipeline.
DEFAULT_NOISE = NoiseModel()
