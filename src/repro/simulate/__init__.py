"""Cycle simulation: cache models, measurement noise, and the cost executor."""

from repro.simulate.cache import (
    ELEMENT_BYTES,
    effective_load_latency,
    icache_entry_penalty,
)
from repro.simulate.executor import (
    ENTRY_OVERHEAD,
    SWP_SETUP,
    AnalysisCache,
    CostModel,
    LoopAnalysis,
    LoopCost,
    reset_shared_cost_models,
    shared_analysis_cache,
    shared_cost_model,
)
from repro.simulate.noise import DEFAULT_NOISE, NOISELESS, NoiseModel

__all__ = [
    "AnalysisCache",
    "CostModel",
    "DEFAULT_NOISE",
    "ELEMENT_BYTES",
    "ENTRY_OVERHEAD",
    "LoopAnalysis",
    "LoopCost",
    "NOISELESS",
    "NoiseModel",
    "SWP_SETUP",
    "effective_load_latency",
    "icache_entry_penalty",
    "reset_shared_cost_models",
    "shared_analysis_cache",
    "shared_cost_model",
]
