"""Cycle simulation: cache models, measurement noise, and the cost executor."""

from repro.simulate.cache import (
    ELEMENT_BYTES,
    effective_load_latency,
    icache_entry_penalty,
)
from repro.simulate.executor import ENTRY_OVERHEAD, SWP_SETUP, CostModel, LoopCost
from repro.simulate.noise import DEFAULT_NOISE, NOISELESS, NoiseModel

__all__ = [
    "CostModel",
    "DEFAULT_NOISE",
    "ELEMENT_BYTES",
    "ENTRY_OVERHEAD",
    "LoopCost",
    "NOISELESS",
    "NoiseModel",
    "SWP_SETUP",
    "effective_load_latency",
    "icache_entry_penalty",
]
